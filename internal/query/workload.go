package query

import (
	"fmt"
	"math/rand"

	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// GenConfig controls random workload generation. Limits default to the
// paper's workload envelope: up to five-way joins, up to five predicates,
// up to three aggregates.
type GenConfig struct {
	// MaxTables bounds the number of joined tables (the paper uses 5).
	MaxTables int
	// MaxFilters bounds the number of predicates (the paper uses 5).
	MaxFilters int
	// MaxAggregates bounds the number of aggregates (the paper uses 3).
	MaxAggregates int
	// EqOnly restricts filters to equality predicates (JOB-light style:
	// "rarely contain range predicates").
	EqOnly bool
	// RangeProb is the probability that a numeric filter is a range rather
	// than an equality predicate (ignored when EqOnly).
	RangeProb float64
	// GroupByProb is the probability that an aggregate query groups by a
	// low-cardinality column.
	GroupByProb float64
	// CountStarOnly restricts aggregates to a single COUNT(*).
	CountStarOnly bool
}

// DefaultGenConfig returns the paper's workload envelope with a balanced
// operator mix.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxTables:     5,
		MaxFilters:    5,
		MaxAggregates: 3,
		RangeProb:     0.5,
		GroupByProb:   0.2,
	}
}

// Generator draws random queries against one database. Literals are sampled
// from the stored data so that predicate selectivities span the full range
// instead of being mostly empty.
type Generator struct {
	db  *storage.Database
	cfg GenConfig
	rng *rand.Rand
}

// NewGenerator creates a generator for the database with the given seed.
func NewGenerator(db *storage.Database, cfg GenConfig, seed int64) *Generator {
	if cfg.MaxTables < 1 {
		cfg.MaxTables = 1
	}
	return &Generator{db: db, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Generate draws n queries. Every returned query validates against the
// database schema.
func (g *Generator) Generate(n int) ([]*Query, error) {
	out := make([]*Query, 0, n)
	for len(out) < n {
		q := g.one()
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("query: generator produced invalid query %q: %w", q.SQL(), err)
		}
		out = append(out, q)
	}
	return out, nil
}

func (g *Generator) one() *Query {
	q := &Query{}
	g.pickTables(q)
	g.pickFilters(q)
	g.pickAggregates(q)
	return q
}

// pickTables selects a connected subgraph of the FK graph by random
// expansion from a random seed table.
func (g *Generator) pickTables(q *Query) {
	s := g.db.Schema
	want := 1 + g.rng.Intn(g.cfg.MaxTables)
	start := s.Tables[g.rng.Intn(len(s.Tables))].Name
	included := map[string]bool{start: true}
	q.Tables = []string{start}
	for len(q.Tables) < want {
		// Collect FK edges from included to excluded tables.
		type edge struct {
			fk schema.ForeignKey
		}
		var frontier []edge
		for _, fk := range s.ForeignKeys {
			inFrom, inTo := included[fk.FromTable], included[fk.ToTable]
			if inFrom != inTo { // exactly one endpoint included
				frontier = append(frontier, edge{fk})
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[g.rng.Intn(len(frontier))]
		var next string
		if included[e.fk.FromTable] {
			next = e.fk.ToTable
		} else {
			next = e.fk.FromTable
		}
		included[next] = true
		q.Tables = append(q.Tables, next)
		q.Joins = append(q.Joins, Join{
			Left:  ColumnRef{Table: e.fk.FromTable, Column: e.fk.FromColumn},
			Right: ColumnRef{Table: e.fk.ToTable, Column: e.fk.ToColumn},
		})
	}
}

// pickFilters draws 0..MaxFilters single-column predicates with literals
// sampled from stored rows.
func (g *Generator) pickFilters(q *Query) {
	nf := g.rng.Intn(g.cfg.MaxFilters + 1)
	for i := 0; i < nf; i++ {
		table := q.Tables[g.rng.Intn(len(q.Tables))]
		tm := g.db.Schema.Table(table)
		// Candidate columns: anything but the primary key (predicates on
		// synthetic PKs are uninteresting and never appear in the paper's
		// workloads).
		var cands []schema.Column
		for _, c := range tm.Columns {
			if !c.PrimaryKey {
				cands = append(cands, c)
			}
		}
		if len(cands) == 0 {
			continue
		}
		col := cands[g.rng.Intn(len(cands))]
		val, ok := g.sampleValue(table, col.Name)
		if !ok {
			continue
		}
		op := g.pickOp(col)
		q.Filters = append(q.Filters, Filter{
			Col:   ColumnRef{Table: table, Column: col.Name},
			Op:    op,
			Value: val,
		})
	}
}

func (g *Generator) pickOp(col schema.Column) CmpOp {
	if g.cfg.EqOnly || !col.Type.Numeric() {
		// Categorical columns take equality/inequality predicates only.
		if !g.cfg.EqOnly && g.rng.Float64() < 0.1 {
			return OpNeq
		}
		return OpEq
	}
	if g.rng.Float64() < g.cfg.RangeProb {
		switch g.rng.Intn(4) {
		case 0:
			return OpLt
		case 1:
			return OpLe
		case 2:
			return OpGt
		default:
			return OpGe
		}
	}
	return OpEq
}

// sampleValue picks the value of a random stored row, so predicate
// selectivity is distributed like the data.
func (g *Generator) sampleValue(table, column string) (float64, bool) {
	tab := g.db.Table(table)
	if tab == nil || tab.Rows() == 0 {
		return 0, false
	}
	col := tab.Col(column)
	for attempt := 0; attempt < 8; attempt++ {
		r := g.rng.Intn(tab.Rows())
		if col.IsNull(r) {
			continue
		}
		return col.AsFloat(r), true
	}
	return 0, false
}

// pickAggregates draws 1..MaxAggregates aggregates (always at least one, as
// in the paper's workloads) plus an optional GROUP BY.
func (g *Generator) pickAggregates(q *Query) {
	if g.cfg.CountStarOnly {
		q.Aggregates = []Aggregate{{Func: AggCount}}
		return
	}
	na := 1 + g.rng.Intn(g.cfg.MaxAggregates)
	for i := 0; i < na; i++ {
		if g.rng.Float64() < 0.4 {
			q.Aggregates = append(q.Aggregates, Aggregate{Func: AggCount})
			continue
		}
		// Numeric aggregate over a random numeric column.
		table := q.Tables[g.rng.Intn(len(q.Tables))]
		tm := g.db.Schema.Table(table)
		var numeric []schema.Column
		for _, c := range tm.Columns {
			if c.Type.Numeric() && !c.PrimaryKey {
				numeric = append(numeric, c)
			}
		}
		if len(numeric) == 0 {
			q.Aggregates = append(q.Aggregates, Aggregate{Func: AggCount})
			continue
		}
		col := numeric[g.rng.Intn(len(numeric))]
		funcs := []AggFunc{AggSum, AggAvg, AggMin, AggMax}
		q.Aggregates = append(q.Aggregates, Aggregate{
			Func: funcs[g.rng.Intn(len(funcs))],
			Col:  ColumnRef{Table: table, Column: col.Name},
		})
	}
	if g.rng.Float64() < g.cfg.GroupByProb {
		table := q.Tables[g.rng.Intn(len(q.Tables))]
		tm := g.db.Schema.Table(table)
		var lowCard []schema.Column
		for _, c := range tm.Columns {
			if !c.PrimaryKey && c.DistinctCount > 0 && c.DistinctCount <= 256 {
				lowCard = append(lowCard, c)
			}
		}
		if len(lowCard) > 0 {
			col := lowCard[g.rng.Intn(len(lowCard))]
			q.GroupBy = []ColumnRef{{Table: table, Column: col.Name}}
		}
	}
}

// JOBLight generates the JOB-light evaluation workload analogue: COUNT(*)
// star-join queries around the fact tables with mostly equality predicates.
func JOBLight(db *storage.Database, n int, seed int64) ([]*Query, error) {
	cfg := GenConfig{
		MaxTables:     5,
		MaxFilters:    4,
		MaxAggregates: 1,
		EqOnly:        false,
		RangeProb:     0.1, // "rarely contain range predicates"
		CountStarOnly: true,
	}
	return NewGenerator(db, cfg, seed).Generate(n)
}

// Scale generates the scale evaluation workload analogue: queries of varying
// join count with range-heavy predicates and a single aggregate.
func Scale(db *storage.Database, n int, seed int64) ([]*Query, error) {
	cfg := GenConfig{
		MaxTables:     5,
		MaxFilters:    3,
		MaxAggregates: 1,
		RangeProb:     0.7,
		GroupByProb:   0,
	}
	return NewGenerator(db, cfg, seed).Generate(n)
}

// Synthetic generates the synthetic evaluation workload analogue: the full
// query envelope (joins, mixed predicates, multiple aggregates, group-by).
func Synthetic(db *storage.Database, n int, seed int64) ([]*Query, error) {
	return NewGenerator(db, DefaultGenConfig(), seed).Generate(n)
}
