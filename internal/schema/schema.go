// Package schema defines the relational schema model shared by every layer
// of the system: logical column and table definitions, data types, foreign
// key relationships and per-table statistics.
//
// The schema model is deliberately database-agnostic: a schema carries no
// identity beyond its names, and all learned components consume only the
// transferable statistics (row counts, page counts, widths, data types)
// defined here, never the names themselves.
package schema

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DataType enumerates the column data types supported by the engine.
//
// The set mirrors the types exercised by the paper's workloads: numeric
// columns used in range predicates and aggregates, and categorical columns
// used in equality predicates.
type DataType int

const (
	// TypeInt is a 64-bit integer column.
	TypeInt DataType = iota
	// TypeFloat is a 64-bit floating point column.
	TypeFloat
	// TypeCategorical is a dictionary-encoded string column with a bounded
	// domain, e.g. a kind/status/country column.
	TypeCategorical
)

// NumDataTypes is the number of distinct DataType values; featurizers size
// their one-hot segments with it.
const NumDataTypes = 3

// String returns the SQL-ish name of the data type.
func (t DataType) String() string {
	switch t {
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE"
	case TypeCategorical:
		return "VARCHAR"
	default:
		return fmt.Sprintf("DataType(%d)", int(t))
	}
}

// Numeric reports whether the type supports range predicates and arithmetic
// aggregates (SUM/AVG/MIN/MAX).
func (t DataType) Numeric() bool { return t == TypeInt || t == TypeFloat }

// Width returns the storage width of one value in bytes. Categorical values
// are dictionary encoded, so their in-page footprint is a fixed code plus an
// amortized dictionary share.
func (t DataType) Width() int {
	switch t {
	case TypeInt:
		return 8
	case TypeFloat:
		return 8
	case TypeCategorical:
		return 16
	default:
		return 8
	}
}

// Column describes one column of a table.
type Column struct {
	// Name is unique within the table.
	Name string
	// Type is the column data type.
	Type DataType
	// DistinctCount is the exact number of distinct values present.
	DistinctCount int
	// NullFrac is the fraction of NULL values in [0, 1).
	NullFrac float64
	// PrimaryKey marks the table's primary key column.
	PrimaryKey bool
}

// ForeignKey declares that FromTable.FromColumn references ToTable's
// primary key column ToColumn.
type ForeignKey struct {
	FromTable  string
	FromColumn string
	ToTable    string
	ToColumn   string
}

// Table describes one table: its columns and physical statistics.
type Table struct {
	Name    string
	Columns []Column
	// RowCount is the exact number of rows.
	RowCount int
	// PageCount is the number of storage pages occupied by the table,
	// derived from RowCount and the row width at the configured page size.
	PageCount int
}

// PageSize is the storage page size in bytes used for page accounting
// throughout the system (the Postgres default).
const PageSize = 8192

// RowWidth returns the width of one row in bytes (sum of column widths plus
// a fixed per-row header, mirroring heap tuple headers).
func (t *Table) RowWidth() int {
	const rowHeader = 24
	w := rowHeader
	for _, c := range t.Columns {
		w += c.Type.Width()
	}
	return w
}

// ComputePages recomputes PageCount from RowCount and RowWidth.
func (t *Table) ComputePages() {
	rowsPerPage := PageSize / t.RowWidth()
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	t.PageCount = (t.RowCount + rowsPerPage - 1) / rowsPerPage
	if t.PageCount == 0 {
		t.PageCount = 1
	}
}

// Column returns the column with the given name, or nil.
func (t *Table) Column(name string) *Column {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i]
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// PrimaryKey returns the primary key column, or nil if the table has none.
func (t *Table) PrimaryKey() *Column {
	for i := range t.Columns {
		if t.Columns[i].PrimaryKey {
			return &t.Columns[i]
		}
	}
	return nil
}

// Schema is a named collection of tables and foreign keys. It is the unit
// the zero-shot model generalizes across: models are trained on many
// schemas and evaluated on schemas they never saw.
type Schema struct {
	Name        string
	Tables      []*Table
	ForeignKeys []ForeignKey

	// fp caches Fingerprint's digest. Schemas are treated as immutable
	// once built (every layer shares them by pointer); the fingerprint
	// is computed at most once per Schema value.
	fpOnce sync.Once
	fp     string
}

// Fingerprint returns a stable content identity for the schema: the
// hex SHA-256 of every field a featurizer can observe — table names,
// row/page counts, column names, types, distinct counts, null
// fractions, primary keys, and foreign keys, in declaration order.
// Two independently constructed but structurally identical schemas
// (e.g. the same database attached twice across a reload) share a
// fingerprint, which is what lets caches key on schema *content*
// instead of leak-prone pointers. Computed lazily once and cached;
// the schema must not be mutated afterwards.
func (s *Schema) Fingerprint() string {
	s.fpOnce.Do(func() {
		h := sha256.New()
		fmt.Fprintf(h, "schema %q\n", s.Name)
		for _, t := range s.Tables {
			fmt.Fprintf(h, "table %q rows=%d pages=%d\n", t.Name, t.RowCount, t.PageCount)
			for _, c := range t.Columns {
				fmt.Fprintf(h, "col %q type=%d distinct=%d nullfrac=%g pk=%t\n",
					c.Name, int(c.Type), c.DistinctCount, c.NullFrac, c.PrimaryKey)
			}
		}
		for _, fk := range s.ForeignKeys {
			fmt.Fprintf(h, "fk %q.%q->%q.%q\n", fk.FromTable, fk.FromColumn, fk.ToTable, fk.ToColumn)
		}
		s.fp = hex.EncodeToString(h.Sum(nil))
	})
	return s.fp
}

// Table returns the table with the given name, or nil.
func (s *Schema) Table(name string) *Table {
	for _, t := range s.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// TableNames returns the sorted table names.
func (s *Schema) TableNames() []string {
	names := make([]string, len(s.Tables))
	for i, t := range s.Tables {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}

// JoinableWith returns the foreign keys that connect table a and table b in
// either direction.
func (s *Schema) JoinableWith(a, b string) []ForeignKey {
	var out []ForeignKey
	for _, fk := range s.ForeignKeys {
		if (fk.FromTable == a && fk.ToTable == b) || (fk.FromTable == b && fk.ToTable == a) {
			out = append(out, fk)
		}
	}
	return out
}

// Neighbors returns the names of tables connected to the given table by a
// foreign key (in either direction), sorted and deduplicated.
func (s *Schema) Neighbors(table string) []string {
	set := map[string]bool{}
	for _, fk := range s.ForeignKeys {
		if fk.FromTable == table {
			set[fk.ToTable] = true
		}
		if fk.ToTable == table {
			set[fk.FromTable] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural consistency: unique table names, unique column
// names per table, FK endpoints exist, FK targets are primary keys, and
// statistics are sane. It returns the first problem found.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema: empty schema name")
	}
	seenTables := map[string]bool{}
	for _, t := range s.Tables {
		if t.Name == "" {
			return fmt.Errorf("schema %s: table with empty name", s.Name)
		}
		if seenTables[t.Name] {
			return fmt.Errorf("schema %s: duplicate table %s", s.Name, t.Name)
		}
		seenTables[t.Name] = true
		if len(t.Columns) == 0 {
			return fmt.Errorf("schema %s: table %s has no columns", s.Name, t.Name)
		}
		if t.RowCount < 0 {
			return fmt.Errorf("schema %s: table %s has negative row count", s.Name, t.Name)
		}
		if t.PageCount <= 0 {
			return fmt.Errorf("schema %s: table %s has non-positive page count", s.Name, t.Name)
		}
		seenCols := map[string]bool{}
		pkCount := 0
		for _, c := range t.Columns {
			if c.Name == "" {
				return fmt.Errorf("schema %s: table %s has a column with empty name", s.Name, t.Name)
			}
			if seenCols[c.Name] {
				return fmt.Errorf("schema %s: table %s duplicate column %s", s.Name, t.Name, c.Name)
			}
			seenCols[c.Name] = true
			if c.DistinctCount < 0 {
				return fmt.Errorf("schema %s: %s.%s negative distinct count", s.Name, t.Name, c.Name)
			}
			if c.NullFrac < 0 || c.NullFrac >= 1 {
				return fmt.Errorf("schema %s: %s.%s null fraction %v out of [0,1)", s.Name, t.Name, c.Name, c.NullFrac)
			}
			if c.PrimaryKey {
				pkCount++
			}
		}
		if pkCount > 1 {
			return fmt.Errorf("schema %s: table %s has %d primary key columns", s.Name, t.Name, pkCount)
		}
	}
	for _, fk := range s.ForeignKeys {
		from := s.Table(fk.FromTable)
		if from == nil {
			return fmt.Errorf("schema %s: foreign key from unknown table %s", s.Name, fk.FromTable)
		}
		if from.Column(fk.FromColumn) == nil {
			return fmt.Errorf("schema %s: foreign key from unknown column %s.%s", s.Name, fk.FromTable, fk.FromColumn)
		}
		to := s.Table(fk.ToTable)
		if to == nil {
			return fmt.Errorf("schema %s: foreign key to unknown table %s", s.Name, fk.ToTable)
		}
		toCol := to.Column(fk.ToColumn)
		if toCol == nil {
			return fmt.Errorf("schema %s: foreign key to unknown column %s.%s", s.Name, fk.ToTable, fk.ToColumn)
		}
		if !toCol.PrimaryKey {
			return fmt.Errorf("schema %s: foreign key targets non-primary-key column %s.%s", s.Name, fk.ToTable, fk.ToColumn)
		}
	}
	return nil
}

// String renders the schema as CREATE TABLE-like text for debugging.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- schema %s\n", s.Name)
	for _, t := range s.Tables {
		fmt.Fprintf(&b, "CREATE TABLE %s ( -- %d rows, %d pages\n", t.Name, t.RowCount, t.PageCount)
		for i, c := range t.Columns {
			comma := ","
			if i == len(t.Columns)-1 {
				comma = ""
			}
			pk := ""
			if c.PrimaryKey {
				pk = " PRIMARY KEY"
			}
			fmt.Fprintf(&b, "  %s %s%s%s -- %d distinct\n", c.Name, c.Type, pk, comma, c.DistinctCount)
		}
		b.WriteString(");\n")
	}
	for _, fk := range s.ForeignKeys {
		fmt.Fprintf(&b, "ALTER TABLE %s ADD FOREIGN KEY (%s) REFERENCES %s(%s);\n",
			fk.FromTable, fk.FromColumn, fk.ToTable, fk.ToColumn)
	}
	return b.String()
}
