package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleSchema() *Schema {
	title := &Table{
		Name: "title",
		Columns: []Column{
			{Name: "id", Type: TypeInt, DistinctCount: 1000, PrimaryKey: true},
			{Name: "production_year", Type: TypeInt, DistinctCount: 100},
			{Name: "kind", Type: TypeCategorical, DistinctCount: 7},
		},
		RowCount: 1000,
	}
	title.ComputePages()
	mc := &Table{
		Name: "movie_companies",
		Columns: []Column{
			{Name: "id", Type: TypeInt, DistinctCount: 5000, PrimaryKey: true},
			{Name: "movie_id", Type: TypeInt, DistinctCount: 900},
			{Name: "company_type_id", Type: TypeInt, DistinctCount: 4},
		},
		RowCount: 5000,
	}
	mc.ComputePages()
	return &Schema{
		Name:   "imdb_mini",
		Tables: []*Table{title, mc},
		ForeignKeys: []ForeignKey{
			{FromTable: "movie_companies", FromColumn: "movie_id", ToTable: "title", ToColumn: "id"},
		},
	}
}

func TestValidateAcceptsWellFormedSchema(t *testing.T) {
	s := sampleSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejectsDuplicateTable(t *testing.T) {
	s := sampleSchema()
	s.Tables = append(s.Tables, s.Tables[0])
	if err := s.Validate(); err == nil {
		t.Fatal("Validate() accepted duplicate table")
	}
}

func TestValidateRejectsDuplicateColumn(t *testing.T) {
	s := sampleSchema()
	s.Tables[0].Columns = append(s.Tables[0].Columns, Column{Name: "id", Type: TypeInt})
	if err := s.Validate(); err == nil {
		t.Fatal("Validate() accepted duplicate column")
	}
}

func TestValidateRejectsDanglingForeignKey(t *testing.T) {
	s := sampleSchema()
	s.ForeignKeys = append(s.ForeignKeys, ForeignKey{FromTable: "nope", FromColumn: "x", ToTable: "title", ToColumn: "id"})
	if err := s.Validate(); err == nil {
		t.Fatal("Validate() accepted FK from unknown table")
	}
}

func TestValidateRejectsFKToNonPrimaryKey(t *testing.T) {
	s := sampleSchema()
	s.ForeignKeys = append(s.ForeignKeys, ForeignKey{
		FromTable: "movie_companies", FromColumn: "movie_id",
		ToTable: "title", ToColumn: "production_year",
	})
	if err := s.Validate(); err == nil {
		t.Fatal("Validate() accepted FK targeting non-PK column")
	}
}

func TestValidateRejectsBadNullFrac(t *testing.T) {
	s := sampleSchema()
	s.Tables[0].Columns[1].NullFrac = 1.0
	if err := s.Validate(); err == nil {
		t.Fatal("Validate() accepted NullFrac = 1.0")
	}
}

func TestTableLookups(t *testing.T) {
	s := sampleSchema()
	if s.Table("title") == nil {
		t.Fatal("Table(title) = nil")
	}
	if s.Table("missing") != nil {
		t.Fatal("Table(missing) != nil")
	}
	tt := s.Table("title")
	if got := tt.Column("kind"); got == nil || got.Type != TypeCategorical {
		t.Fatalf("Column(kind) = %v", got)
	}
	if got := tt.ColumnIndex("production_year"); got != 1 {
		t.Fatalf("ColumnIndex(production_year) = %d, want 1", got)
	}
	if got := tt.ColumnIndex("missing"); got != -1 {
		t.Fatalf("ColumnIndex(missing) = %d, want -1", got)
	}
	pk := tt.PrimaryKey()
	if pk == nil || pk.Name != "id" {
		t.Fatalf("PrimaryKey() = %v, want id", pk)
	}
}

func TestJoinableWithSymmetric(t *testing.T) {
	s := sampleSchema()
	ab := s.JoinableWith("title", "movie_companies")
	ba := s.JoinableWith("movie_companies", "title")
	if len(ab) != 1 || len(ba) != 1 {
		t.Fatalf("JoinableWith returned %d / %d FKs, want 1 / 1", len(ab), len(ba))
	}
	if len(s.JoinableWith("title", "title")) != 0 {
		t.Fatal("JoinableWith(title,title) should be empty")
	}
}

func TestNeighbors(t *testing.T) {
	s := sampleSchema()
	n := s.Neighbors("title")
	if len(n) != 1 || n[0] != "movie_companies" {
		t.Fatalf("Neighbors(title) = %v", n)
	}
	if got := s.Neighbors("isolated"); len(got) != 0 {
		t.Fatalf("Neighbors(isolated) = %v, want empty", got)
	}
}

func TestComputePagesProperties(t *testing.T) {
	// Pages are monotone in row count, and never zero.
	f := func(rows uint16) bool {
		tab := &Table{
			Name:     "t",
			Columns:  []Column{{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeCategorical}},
			RowCount: int(rows),
		}
		tab.ComputePages()
		if tab.PageCount < 1 {
			return false
		}
		bigger := *tab
		bigger.RowCount = tab.RowCount*2 + 1
		bigger.ComputePages()
		return bigger.PageCount >= tab.PageCount
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowWidthIncludesAllColumns(t *testing.T) {
	tab := &Table{
		Name: "t",
		Columns: []Column{
			{Name: "a", Type: TypeInt},
			{Name: "b", Type: TypeFloat},
			{Name: "c", Type: TypeCategorical},
		},
	}
	want := 24 + 8 + 8 + 16
	if got := tab.RowWidth(); got != want {
		t.Fatalf("RowWidth() = %d, want %d", got, want)
	}
}

func TestDataTypeStringAndNumeric(t *testing.T) {
	cases := []struct {
		ty      DataType
		name    string
		numeric bool
	}{
		{TypeInt, "BIGINT", true},
		{TypeFloat, "DOUBLE", true},
		{TypeCategorical, "VARCHAR", false},
	}
	for _, c := range cases {
		if c.ty.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", int(c.ty), c.ty.String(), c.name)
		}
		if c.ty.Numeric() != c.numeric {
			t.Errorf("%v.Numeric() = %v, want %v", c.name, c.ty.Numeric(), c.numeric)
		}
	}
	if got := DataType(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type String() = %q", got)
	}
}

func TestSchemaStringMentionsEverything(t *testing.T) {
	s := sampleSchema()
	str := s.String()
	for _, want := range []string{"title", "movie_companies", "production_year", "FOREIGN KEY", "PRIMARY KEY"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}

func TestTableNamesSorted(t *testing.T) {
	s := sampleSchema()
	names := s.TableNames()
	if len(names) != 2 || names[0] != "movie_companies" || names[1] != "title" {
		t.Fatalf("TableNames() = %v", names)
	}
}
