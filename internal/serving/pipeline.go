package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/obs"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/plan"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/sqlparse"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// Pipeline-stage names, in execution order. They key the per-stage
// latency maps in DatabaseStats.
const (
	StageParse     = "parse"
	StageOptimize  = "optimize"
	StageFeaturize = "featurize"
	StageEncode    = "encode"
	StagePredict   = "predict"
)

// prepareStages is the SQL→PlanInput stage chain every statement runs
// (unless the plan cache short-circuits it). Stages are named funcs over
// a shared carrier so the chain stays recomposable — inserting a rewrite
// stage or dropping one is a slice edit, not a refactor.
var prepareStages = []stage{
	{StageParse, (*dbSession).parseStage},
	{StageOptimize, (*dbSession).optimizeStage},
	{StageFeaturize, (*dbSession).featurizeStage},
}

// stage is one named pipeline step.
type stage struct {
	name string
	fn   func(*dbSession, *pipelineQuery) error
}

// pipelineQuery carries one statement through the stage chain; each stage
// fills the fields the next one reads.
type pipelineQuery struct {
	sql string
	q   *query.Query
	p   *plan.Node
	in  costmodel.PlanInput
}

// dbSession is the per-attached-database pipeline state, built once at
// AttachDatabase: collected statistics, the optimizer over them, the plan
// cache, and per-stage latency recorders. Hoisting this out of the
// request path is what makes handlers read-only and lock-free — the old
// server rebuilt nothing per request but could serve only one database;
// a Session keeps one of these per attached database.
type dbSession struct {
	name  string
	db    *storage.Database
	st    *stats.DBStats
	opt   *optimizer.Optimizer
	cache *costmodel.PlanCache
	lat   map[string]*metrics.LatencyRecorder

	// hypo is the what-if layer: a copy-on-write hypothetical catalog
	// sharing this database's statistics, built lazily on the first
	// sweep so databases that never see an advise request pay nothing.
	// (Atomic rather than once-guarded field access so Stats can peek
	// without synchronizing with a concurrent first sweep.)
	hypoOnce sync.Once
	hypo     atomic.Pointer[whatif.Catalog]
}

func newDBSession(name string, db *storage.Database, cacheSize int) *dbSession {
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	d := &dbSession{
		name:  name,
		db:    db,
		st:    st,
		opt:   optimizer.New(db.Schema, st, nil, optimizer.DefaultCostParams()),
		cache: costmodel.NewPlanCache(cacheSize),
		lat:   map[string]*metrics.LatencyRecorder{},
	}
	for _, s := range prepareStages {
		d.lat[s.name] = &metrics.LatencyRecorder{}
	}
	return d
}

// prepare turns one SQL text into a prediction input, consulting the plan
// cache first. The returned bool reports a cache hit; the returned string
// is the statement's fingerprint (the plan-cache key, echoed to clients
// so feedback can join back to the retained plan). The plan is NOT
// executed: predictions see exactly what a database would know before
// running the query. The caller's ctx is checked between stages so an
// impatient client stops paying for optimization it no longer wants; a
// ctx error is returned bare (not wrapped in ErrBadQuery — the statement
// was fine, the client gave up).
func (d *dbSession) prepare(ctx context.Context, sql string) (costmodel.PlanInput, bool, string, error) {
	return d.prepareTraced(ctx, sql, nil)
}

// prepareTraced is prepare with an optional sampled trace: each executed
// stage records a span alongside its latency observation (tr is usually
// nil — span recording is nil-safe and free).
func (d *dbSession) prepareTraced(ctx context.Context, sql string, tr *obs.Trace) (costmodel.PlanInput, bool, string, error) {
	fp := costmodel.Fingerprint(sql)
	if in, ok := d.cache.Get(fp); ok {
		return in, true, fp, nil
	}
	pq := &pipelineQuery{sql: sql}
	for _, s := range prepareStages {
		if err := ctx.Err(); err != nil {
			return costmodel.PlanInput{}, false, fp, err
		}
		start := time.Now()
		err := s.fn(d, pq)
		d.lat[s.name].Observe(time.Since(start))
		tr.Span(s.name, start)
		if err != nil {
			// Both the stage's own error and ErrBadQuery stay in the
			// chain, so callers can match either.
			return costmodel.PlanInput{}, false, fp, fmt.Errorf("%s: %w: %w", s.name, err, ErrBadQuery)
		}
	}
	d.cache.Put(fp, pq.in)
	return pq.in, false, fp, nil
}

// parseStage resolves the SQL text against the database's schema.
func (d *dbSession) parseStage(pq *pipelineQuery) error {
	q, err := sqlparse.Parse(pq.sql, d.db.Schema)
	if err != nil {
		return err
	}
	pq.q = q
	return nil
}

// optimizeStage plans the parsed query with the database's hoisted
// optimizer and statistics.
func (d *dbSession) optimizeStage(pq *pipelineQuery) error {
	p, err := d.opt.Plan(pq.q)
	if err != nil {
		return err
	}
	pq.p = p
	return nil
}

// featurizeStage assembles the estimator-facing prediction input. The
// deep featurization (graph encoding, set featurization, ...) is owned by
// each estimator adapter and memoized per database in costmodel's
// featCache; this stage builds the shared context they all consume.
func (d *dbSession) featurizeStage(pq *pipelineQuery) error {
	pq.in = costmodel.PlanInput{
		DB:            d.db,
		Query:         pq.q,
		Plan:          pq.p,
		OptimizerCost: optimizer.TotalCost(pq.p),
		// The encoding memo lives and dies with the plan-cache entry:
		// the first prediction of this shape encodes the graph, every
		// repeat skips PlanEncoder.Encode entirely.
		Enc: costmodel.NewEncodedPlan(),
	}
	return nil
}

// catalog returns the database's what-if layer, building it on first
// use. The catalog shares the session's collected statistics; its
// prepared-plan cache is sized like the main plan cache.
func (d *dbSession) catalog(cacheSize int) *whatif.Catalog {
	d.hypoOnce.Do(func() {
		d.hypo.Store(whatif.NewCatalog(d.db, d.st, optimizer.DefaultCostParams(), cacheSize))
	})
	return d.hypo.Load()
}

// stats snapshots the database's stage latencies and plan caches.
func (d *dbSession) stats() DatabaseStats {
	stages := make(map[string]metrics.LatencySummary, len(d.lat))
	for name, l := range d.lat {
		stages[name] = l.Snapshot()
	}
	ds := DatabaseStats{
		Database:  d.name,
		PlanCache: d.cache.Stats(),
		Stages:    stages,
	}
	if c := d.hypo.Load(); c != nil {
		cs := c.CacheStats()
		ds.WhatIfCache = &cs
	}
	return ds
}
