package serving

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/obs"
)

// scheduler coalesces concurrent single-prediction requests into
// adaptive micro-batches. Each estimator gets its own queue and drain
// goroutine running a backpressure-batching policy:
//
//   - greedily absorb every single already queued (requests that arrived
//     while the previous batch was inferring), up to maxBatch;
//   - if the queue runs dry with a solo request AND the previous flush
//     actually coalesced, linger up to maxWait for companions — recent
//     traffic suggests more are in flight;
//   - otherwise flush immediately: a lone request on a quiet queue pays
//     zero added latency.
//
// Batch size therefore follows the instantaneous load — that is the
// "adaptive" in adaptive micro-batching. Batches drain through
// Estimator.PredictBatch, so a wall of independent /v1/predict clients
// exercises the same batched-inference path as one explicit
// /v1/predict_batch call — for a fusing estimator (costmodel.Fused)
// every coalesced micro-batch is one fused forward pass.
type scheduler struct {
	maxBatch int
	maxWait  time.Duration

	// resolve maps a model name to its current estimator generation at
	// flush time (nil outside a Session, e.g. in direct scheduler tests;
	// the queue's creation-time estimator is the fallback). Resolving at
	// flush — not at enqueue or queue creation — is what makes hot-swaps
	// race-free: the generation that predicts is always the one the
	// session's model registry holds at that moment.
	resolve func(name string) costmodel.Estimator

	mu     sync.RWMutex
	queues map[string]*modelQueue
	closed bool
	wg     sync.WaitGroup

	batches    metrics.Counter
	items      metrics.Counter
	coalesced  metrics.HitCounter // hit: request shared its batch with others
	fallbacks  metrics.Counter    // fused batches that failed and re-predicted per request
	maxSeen    atomic.Int64
	batchSizes *metrics.Window // distribution of flushed batch sizes
}

// modelQueue is one model name's pending singles. Queues live for the
// scheduler's lifetime (one per name, ever): a hot-swap changes which
// estimator flush resolves, not the queue — no queue churn, no goroutine
// leak, and the replaced generation becomes collectable.
type modelQueue struct {
	name string
	est  atomic.Pointer[costmodel.Estimator] // creation-time fallback when resolve is nil
	ch   chan *schedRequest
}

type schedRequest struct {
	ctx  context.Context
	in   costmodel.PlanInput
	done chan schedResult
	// tr, when the request is sampled, receives the flush's batch
	// attribution (batch size, coalesce wait measured from enq). The
	// drain goroutine writes it strictly before sending on done, so the
	// requester's later reads are ordered by the channel receive.
	tr  *obs.Trace
	enq time.Time
}

type schedResult struct {
	v   float64
	err error
}

func newScheduler(maxBatch int, maxWait time.Duration) *scheduler {
	return &scheduler{
		maxBatch:   maxBatch,
		maxWait:    maxWait,
		queues:     map[string]*modelQueue{},
		batchSizes: metrics.NewWindow(0),
	}
}

// queue returns (creating on first use) the queue for the estimator's
// name. A stale estimator reference (resolved just before a hot-swap)
// still lands on its name's queue; the drain loop reads the queue's
// current generation at flush time.
func (s *scheduler) queue(est costmodel.Estimator) (*modelQueue, error) {
	name := est.Name()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	q, ok := s.queues[name]
	s.mu.RUnlock()
	if ok {
		return q, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if q, ok = s.queues[name]; ok {
		return q, nil
	}
	q = &modelQueue{name: name, ch: make(chan *schedRequest, 4*s.maxBatch)}
	q.est.Store(&est)
	s.queues[name] = q
	s.wg.Add(1)
	go s.drainLoop(q)
	return q, nil
}

// predictOne submits one input and blocks until its micro-batch drains
// (or ctx is done).
func (s *scheduler) predictOne(ctx context.Context, est costmodel.Estimator, in costmodel.PlanInput, tr *obs.Trace) (float64, error) {
	q, err := s.queue(est)
	if err != nil {
		return 0, err
	}
	r := &schedRequest{ctx: ctx, in: in, done: make(chan schedResult, 1)}
	if tr != nil {
		r.tr = tr
		r.enq = time.Now()
	}
	// Hold the read lock across the send: close() takes the write lock
	// before closing channels, so a send in flight can never hit a closed
	// channel.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return 0, ErrClosed
	}
	select {
	case q.ch <- r:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.mu.RUnlock()
		return 0, ctx.Err()
	}
	select {
	case res := <-r.done:
		return res.v, res.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// drainLoop owns one queue: collect a micro-batch under the adaptive
// policy, flush, repeat. It exits once the queue channel is closed and
// drained, so every accepted request is answered even during shutdown.
func (s *scheduler) drainLoop(q *modelQueue) {
	defer s.wg.Done()
	lastCoalesced := false
	for {
		first, ok := <-q.ch
		if !ok {
			return
		}
		batch := []*schedRequest{first}
		lingered := false
	collect:
		for len(batch) < s.maxBatch {
			select {
			case r, chOpen := <-q.ch:
				if !chOpen {
					s.flush(q, batch)
					return
				}
				batch = append(batch, r)
			default:
				// Queue dry. Flush now unless a solo request should
				// linger for companions (at most once per batch).
				if len(batch) > 1 || !lastCoalesced || lingered {
					break collect
				}
				lingered = true
				timer := time.NewTimer(s.maxWait)
				select {
				case r, chOpen := <-q.ch:
					timer.Stop()
					if !chOpen {
						s.flush(q, batch)
						return
					}
					batch = append(batch, r)
				case <-timer.C:
					break collect
				}
			}
		}
		lastCoalesced = len(batch) > 1
		s.flush(q, batch)
	}
}

// flush answers one micro-batch through the model name's current
// estimator generation. Requests whose caller already gave up are
// dropped before inference; the rest drain through PredictBatch. If the
// shared batch call fails (its first bad input aborts everything), the
// batch falls back to per-request Predict so each caller gets exactly
// its own error.
func (s *scheduler) flush(q *modelQueue, batch []*schedRequest) {
	est := *q.est.Load()
	if s.resolve != nil {
		if cur := s.resolve(q.name); cur != nil {
			est = cur
			// Keep the fallback pointing at the live generation so the
			// replaced model really is collectable.
			q.est.Store(&cur)
		}
	}
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.done <- schedResult{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	for _, r := range live {
		if r.tr != nil {
			r.tr.SetBatch(len(live), time.Since(r.enq))
		}
	}
	ins := make([]costmodel.PlanInput, len(live))
	for i, r := range live {
		ins[i] = r.in
	}
	// The batch outlives any single caller's deadline by design — its
	// members already passed their own ctx checks above.
	preds, err := est.PredictBatch(context.Background(), ins)
	if err != nil {
		// The fused pass aborted and every request re-predicts alone, so
		// nothing actually coalesced: count the fallback as its own
		// outcome instead of a successful batch — batches/coalesced/
		// batchSizes record only flushes that really drained fused.
		s.fallbacks.Inc()
		parallelEach(len(live), func(i int) {
			r := live[i]
			v, perr := est.Predict(r.ctx, r.in)
			r.done <- schedResult{v: v, err: perr}
		})
		return
	}
	s.batches.Inc()
	s.items.Add(int64(len(live)))
	s.batchSizes.Observe(float64(len(live)))
	if len(live) > 1 {
		s.coalesced.HitN(int64(len(live)))
	} else {
		s.coalesced.Miss()
	}
	for n := int64(len(live)); ; {
		cur := s.maxSeen.Load()
		if n <= cur || s.maxSeen.CompareAndSwap(cur, n) {
			break
		}
	}
	for i, r := range live {
		r.done <- schedResult{v: preds[i]}
	}
}

// SchedulerStats reports micro-batching behavior: how many batches
// drained fused, how many singles they carried, the share of singles
// that actually shared a batch, the largest batch observed, the recent
// batch-size distribution, and how many flushes fell back to per-
// request Predict after a failed fused pass — the observable shape of
// the coalescer feeding real fused batches into Estimator.PredictBatch.
// Fallback flushes appear ONLY in Fallbacks: their requests never
// shared an inference pass, so counting them as batches or coalesced
// hits would overstate the fused rate.
type SchedulerStats struct {
	Batches       int64                 `json:"batches"`
	Items         int64                 `json:"items"`
	MeanBatchSize float64               `json:"mean_batch_size"`
	MaxBatchSize  int64                 `json:"max_batch_size"`
	Coalesced     metrics.HitRate       `json:"coalesced"`
	Fallbacks     int64                 `json:"fallbacks"`
	BatchSizes    metrics.WindowSummary `json:"batch_sizes"`
}

func (s *scheduler) stats() SchedulerStats {
	st := SchedulerStats{
		Batches:      s.batches.Value(),
		Items:        s.items.Value(),
		MaxBatchSize: s.maxSeen.Load(),
		Coalesced:    s.coalesced.Snapshot(),
		Fallbacks:    s.fallbacks.Value(),
		BatchSizes:   s.batchSizes.Snapshot(),
	}
	if st.Batches > 0 {
		st.MeanBatchSize = float64(st.Items) / float64(st.Batches)
	}
	return st
}

// close stops accepting new singles, drains every queue, and waits for
// in-flight batches to answer.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.queues {
		close(q.ch)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
