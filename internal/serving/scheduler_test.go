package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
)

// schedIn builds a synthetic input; the fake estimator only reads
// OptimizerCost, so no database is needed at the scheduler layer.
func schedIn(cost float64) costmodel.PlanInput {
	return costmodel.PlanInput{OptimizerCost: cost}
}

// TestSchedulerCoalesces fires a burst of concurrent singles and checks
// they drain in fewer, larger micro-batches through PredictBatch.
func TestSchedulerCoalesces(t *testing.T) {
	est := &fakeEstimator{name: "fake", delay: 5 * time.Millisecond}
	s := newScheduler(32, 50*time.Millisecond)
	defer s.close()

	const clients = 16
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			v, err := s.predictOne(context.Background(), est, schedIn(float64(c)), nil)
			if err == nil && v <= 0 {
				err = errors.New("non-positive prediction")
			}
			if err != nil {
				errCh <- err
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := s.stats()
	if st.Items != clients {
		t.Fatalf("items = %d, want %d", st.Items, clients)
	}
	if st.Batches >= clients {
		t.Fatalf("no coalescing: %d batches for %d singles", st.Batches, clients)
	}
	if st.MaxBatchSize < 2 || st.Coalesced.Hits == 0 {
		t.Fatalf("scheduler stats show no shared batches: %+v", st)
	}
	if st.BatchSizes.Count != st.Batches || int64(st.BatchSizes.Max) != st.MaxBatchSize {
		t.Fatalf("batch-size distribution inconsistent with counters: %+v", st)
	}
	if st.BatchSizes.P95 < st.BatchSizes.P50 || st.BatchSizes.P50 < 1 {
		t.Fatalf("degenerate batch-size quantiles: %+v", st.BatchSizes)
	}
	if got := est.batchCalls.Load(); got != st.Batches {
		t.Fatalf("estimator saw %d batch calls, scheduler counted %d", got, st.Batches)
	}
}

// TestSchedulerMaxBatchCap checks a full batch drains immediately at the
// size cap instead of waiting out the deadline.
func TestSchedulerMaxBatchCap(t *testing.T) {
	est := &fakeEstimator{name: "fake", delay: time.Millisecond}
	const cap = 4
	s := newScheduler(cap, time.Second) // deadline long enough to never fire
	defer s.close()

	const clients = 8
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if _, err := s.predictOne(context.Background(), est, schedIn(float64(c)), nil); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("burst took %v — batches waited for the deadline instead of draining at the cap", elapsed)
	}
	st := s.stats()
	if st.MaxBatchSize > cap {
		t.Fatalf("batch exceeded cap: %+v", st)
	}
	if st.Batches < clients/cap {
		t.Fatalf("too few batches for the cap: %+v", st)
	}
}

// TestSchedulerFallbackNotCountedAsCoalesced pins the fused-vs-fallback
// stats contract: a flush whose shared PredictBatch fails re-predicts
// per request, and that flush must surface in Fallbacks ONLY — not in
// batches, coalesced, or the batch-size distribution, which previously
// recorded it as a successful coalesce before the fused call even ran.
func TestSchedulerFallbackNotCountedAsCoalesced(t *testing.T) {
	poisonCost := 13.0
	est := &fakeEstimator{name: "fake", poison: func(in costmodel.PlanInput) error {
		if in.OptimizerCost == poisonCost {
			return errors.New("poisoned input")
		}
		return nil
	}}
	s := newScheduler(8, time.Millisecond)
	defer s.close()

	// A poisoned single: the fused pass fails, the fallback re-predicts
	// it alone, and the caller gets the per-request error.
	if _, err := s.predictOne(context.Background(), est, schedIn(poisonCost), nil); err == nil {
		t.Fatal("poisoned request did not surface its error")
	}
	st := s.stats()
	if st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.Fallbacks)
	}
	if st.Batches != 0 || st.Items != 0 {
		t.Fatalf("failed fused flush counted as a batch: %+v", st)
	}
	if st.Coalesced.Hits != 0 || st.Coalesced.Misses != 0 {
		t.Fatalf("failed fused flush touched the coalesce counters: %+v", st.Coalesced)
	}
	if st.BatchSizes.Count != 0 {
		t.Fatalf("failed fused flush landed in the batch-size distribution: %+v", st.BatchSizes)
	}

	// A healthy single drains fused and counts as before.
	if _, err := s.predictOne(context.Background(), est, schedIn(1), nil); err != nil {
		t.Fatal(err)
	}
	st = s.stats()
	if st.Batches != 1 || st.Items != 1 || st.Fallbacks != 1 {
		t.Fatalf("healthy flush after fallback: %+v", st)
	}
	if st.BatchSizes.Count != 1 {
		t.Fatalf("healthy flush missing from batch-size distribution: %+v", st.BatchSizes)
	}
}

func TestSchedulerContextCancel(t *testing.T) {
	est := &fakeEstimator{name: "fake"}
	s := newScheduler(8, 10*time.Millisecond)
	defer s.close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.predictOne(ctx, est, schedIn(1), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSchedulerCloseRejectsAndDrains(t *testing.T) {
	est := &fakeEstimator{name: "fake", delay: 2 * time.Millisecond}
	s := newScheduler(8, 5*time.Millisecond)

	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.predictOne(context.Background(), est, schedIn(float64(i)), nil)
		}(i)
	}
	time.Sleep(time.Millisecond)
	s.close()
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if _, err := s.predictOne(context.Background(), est, schedIn(1), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("predict after close = %v, want ErrClosed", err)
	}
	s.close() // idempotent
}
