// Package serving is the layer between the HTTP handlers (or any other
// front end) and the costmodel estimators: one Session owns the
// end-to-end SQL→cost pipeline over a *set* of attached databases — the
// paper's "one model to rule them all" promise made operational, since a
// single zero-shot estimator can price queries against every database a
// deployment hosts.
//
// A Session composes four stages:
//
//	parse ──▶ optimize ──▶ featurize ──▶ predict
//
// The first three stages are per-database (resolved names, physical plan,
// prediction input) and are skipped entirely on a plan-cache hit: each
// attached database keeps a costmodel.PlanCache keyed by SQL fingerprint,
// so repeated query shapes pay only the predict stage. The predict stage
// routes single-prediction requests through a Scheduler that coalesces
// concurrent singles into adaptive micro-batches (bounded by a max batch
// size and a max-wait deadline) draining through Estimator.PredictBatch —
// p50 single-request traffic gets batched-inference throughput without
// clients ever forming batches themselves, and with a fusing estimator
// (the zero-shot model) each micro-batch executes as one fused forward
// pass. Explicit batches bypass the scheduler and drain through
// PredictBatch directly.
//
// Every stage records latencies into internal/metrics recorders and the
// caches record hit rates; Stats snapshots the lot for a /v1/stats
// endpoint. All Session methods are safe for concurrent use; Attach*
// calls are expected at startup but may interleave with traffic.
package serving

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/obs"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// canceled reports whether err is the caller's own context ending — an
// impatient client, not a serving failure; it stays out of the error
// counters so operators can alert on the Errors stat.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// parallelEach runs fn(i) for every i in [0, n) across min(GOMAXPROCS,
// n) workers and waits for completion — the compensation path when a
// shared PredictBatch aborts and the survivors re-predict individually.
func parallelEach(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Sentinel error kinds front ends map to status codes (wrapped, test with
// errors.Is).
var (
	// ErrNotFound marks resolution failures: unknown database or model.
	ErrNotFound = errors.New("not found")
	// ErrBadQuery marks pipeline failures caused by the statement itself
	// (malformed SQL, unknown tables/columns, unplannable queries).
	ErrBadQuery = errors.New("bad query")
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("serving: session closed")
)

// Config sizes a Session. Zero values select the defaults.
type Config struct {
	// MaxBatch caps one coalesced micro-batch (default 64).
	MaxBatch int
	// MaxWait is how long the scheduler lets a solo request linger for
	// companions before draining it (default 500µs). The linger only
	// happens when the previous batch coalesced — steady solo traffic
	// pays no added latency. Smaller values favor latency, larger ones
	// throughput.
	MaxWait time.Duration
	// PlanCacheSize bounds each attached database's plan cache (default
	// costmodel.DefaultPlanCacheSize).
	PlanCacheSize int
	// Tracer, when non-nil, records sampled request traces and the
	// always-on slow-query log for Predict calls (see internal/obs).
	// Nil disables tracing entirely; the request path then performs no
	// additional allocations (pinned by TestPredictTracingOffAllocs).
	Tracer *obs.Tracer
}

// DefaultMaxBatch and DefaultMaxWait are the scheduler defaults: the
// queue's backpressure, not the deadline, usually sizes a batch —
// "adaptive" means batch size follows the instantaneous load (see the
// scheduler's policy comment).
const (
	DefaultMaxBatch = 64
	DefaultMaxWait  = 500 * time.Microsecond
)

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxWait <= 0 {
		c.MaxWait = DefaultMaxWait
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = costmodel.DefaultPlanCacheSize
	}
	return c
}

// Session is the serving pipeline: attached databases, attached
// estimators, the micro-batch scheduler, and the metrics that observe
// them.
type Session struct {
	cfg     Config
	sched   *scheduler
	tracer  *obs.Tracer // nil when tracing is off; all uses are nil-safe
	started time.Time

	mu     sync.RWMutex
	dbs    map[string]*dbSession
	models map[string]*modelSlot
	closed bool

	requests metrics.Counter
	errs     metrics.Counter
	predict  metrics.LatencyRecorder

	sweeps     metrics.Counter
	sweepLat   metrics.LatencyRecorder
	sweepSizes *metrics.Window
}

// modelSlot is one attached model name's current estimator plus its
// swap history: the generation counts up from 1 at first attach, and
// swapped records when the current generation took over. The adaptation
// subsystem's accepted fine-tunes surface here.
type modelSlot struct {
	est        costmodel.Estimator
	generation int64
	swapped    time.Time
}

// NewSession returns an empty session; attach at least one database and
// one model before predicting.
func NewSession(cfg Config) *Session {
	cfg = cfg.withDefaults()
	s := &Session{
		cfg:        cfg,
		sched:      newScheduler(cfg.MaxBatch, cfg.MaxWait),
		tracer:     cfg.Tracer,
		started:    time.Now(),
		dbs:        map[string]*dbSession{},
		models:     map[string]*modelSlot{},
		sweepSizes: metrics.NewWindow(0),
	}
	// Micro-batches always flush through the name's currently attached
	// generation, so a hot-swap takes effect even for already-queued
	// singles.
	s.sched.resolve = s.currentModel
	return s
}

// currentModel returns the estimator currently attached under name (nil
// when detached) — the scheduler's flush-time generation lookup.
func (s *Session) currentModel(name string) costmodel.Estimator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if slot, ok := s.models[name]; ok {
		return slot.est
	}
	return nil
}

// AttachDatabase registers db under name and builds its per-database
// pipeline state once: statistics, the optimizer, and an empty plan
// cache. Every subsequent request against this name reuses that state.
func (s *Session) AttachDatabase(name string, db *storage.Database) error {
	if name == "" || db == nil {
		return fmt.Errorf("serving: AttachDatabase needs a name and a database")
	}
	// Fail cheap before the statistics pass; the attach below re-checks
	// in case of a racing attach.
	if err := s.checkAttachable(name); err != nil {
		return err
	}
	ds := newDBSession(name, db, s.cfg.PlanCacheSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.dbs[name]; dup {
		return fmt.Errorf("serving: database %q already attached", name)
	}
	s.dbs[name] = ds
	return nil
}

// checkAttachable pre-validates an AttachDatabase call so duplicate or
// post-Close attaches reject before collecting statistics.
func (s *Session) checkAttachable(name string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.dbs[name]; dup {
		return fmt.Errorf("serving: database %q already attached", name)
	}
	return nil
}

// Counts returns the number of attached models and databases — the
// cheap accessor liveness probes want, with no list building or
// plan-cache locking.
func (s *Session) Counts() (models, databases int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.models), len(s.dbs)
}

// AttachModel registers an estimator under its Name(). Re-attaching a
// name replaces the previous estimator (latest wins), which lets callers
// hot-swap retrained models without a new session: the scheduler
// resolves the current generation at every flush, so even already-queued
// singles drain through the new model and the old one becomes
// collectable.
func (s *Session) AttachModel(est costmodel.Estimator) error {
	if est == nil {
		return fmt.Errorf("serving: AttachModel needs an estimator")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	name := est.Name()
	if slot, ok := s.models[name]; ok {
		slot.est = est
		slot.generation++
		slot.swapped = time.Now()
		return nil
	}
	s.models[name] = &modelSlot{est: est, generation: 1, swapped: time.Now()}
	return nil
}

// Model returns the estimator currently attached under name (empty when
// unambiguous) — the accessor the adaptation subsystem uses to clone and
// shadow-evaluate the serving generation.
func (s *Session) Model(name string) (costmodel.Estimator, error) {
	return s.estimator(name)
}

// ModelGeneration reports how many times the name has been attached
// (hot-swaps included) and when the current generation took over.
func (s *Session) ModelGeneration(name string) (generation int64, swapped time.Time, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, time.Time{}, ErrClosed
	}
	slot, ok := s.models[name]
	if !ok {
		return 0, time.Time{}, fmt.Errorf("model %q not attached (attached: %v): %w", name, s.modelNames(), ErrNotFound)
	}
	return slot.generation, slot.swapped, nil
}

// CachedPlan returns the retained prepared input for a fingerprint in
// the named database's plan cache, without touching LRU order or hit
// stats. This is the feedback join: an observed runtime arrives with the
// fingerprint of an earlier prediction, and the cached PlanInput turns
// the pair into a training sample.
func (s *Session) CachedPlan(dbName, fingerprint string) (costmodel.PlanInput, bool, error) {
	d, err := s.database(dbName)
	if err != nil {
		return costmodel.PlanInput{}, false, err
	}
	in, ok := d.cache.Peek(fingerprint)
	return in, ok, nil
}

// database resolves a request's database name; an empty name selects the
// only attached database when unambiguous.
func (s *Session) database(name string) (*dbSession, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if name == "" {
		if len(s.dbs) == 1 {
			for _, d := range s.dbs {
				return d, nil
			}
		}
		return nil, fmt.Errorf("request must name a database (attached: %v): %w", s.databaseNames(), ErrNotFound)
	}
	d, ok := s.dbs[name]
	if !ok {
		return nil, fmt.Errorf("database %q not attached (attached: %v): %w", name, s.databaseNames(), ErrNotFound)
	}
	return d, nil
}

// estimator resolves a request's model name; an empty name selects the
// only attached model when unambiguous.
func (s *Session) estimator(name string) (costmodel.Estimator, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if name == "" {
		if len(s.models) == 1 {
			for _, slot := range s.models {
				return slot.est, nil
			}
		}
		return nil, fmt.Errorf("request must name a model (attached: %v): %w", s.modelNames(), ErrNotFound)
	}
	slot, ok := s.models[name]
	if !ok {
		return nil, fmt.Errorf("model %q not attached (attached: %v): %w", name, s.modelNames(), ErrNotFound)
	}
	return slot.est, nil
}

// databaseNames returns the attached database names sorted; callers hold
// at least a read lock.
func (s *Session) databaseNames() []string {
	out := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// modelNames returns the attached model names sorted; callers hold at
// least a read lock.
func (s *Session) modelNames() []string {
	out := make([]string, 0, len(s.models))
	for n := range s.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Models lists the attached model names sorted.
func (s *Session) Models() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.modelNames()
}

// DatabaseInfo describes one attached database.
type DatabaseInfo struct {
	Name      string                   `json:"name"`
	Schema    string                   `json:"schema"`
	Tables    int                      `json:"tables"`
	PlanCache costmodel.PlanCacheStats `json:"plan_cache"`
}

// Databases lists the attached databases sorted by attach name.
func (s *Session) Databases() []DatabaseInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]DatabaseInfo, 0, len(s.dbs))
	for _, name := range s.databaseNames() {
		d := s.dbs[name]
		out = append(out, DatabaseInfo{
			Name:      name,
			Schema:    d.db.Schema.Name,
			Tables:    len(d.db.Schema.Tables),
			PlanCache: d.cache.Stats(),
		})
	}
	return out
}

// Prediction is one answered single-prediction request.
type Prediction struct {
	Database      string  `json:"db"`
	Model         string  `json:"model"`
	RuntimeSec    float64 `json:"runtime_sec"`
	OptimizerCost float64 `json:"optimizer_cost"`
	EstRows       float64 `json:"est_rows"`
	// Fingerprint is the statement's plan-cache key. Clients that later
	// observe the query's actual runtime hand it back with the
	// fingerprint (POST /v1/feedback) so the adaptation subsystem can
	// join the runtime against the retained plan.
	Fingerprint string `json:"fingerprint"`
	// PlanCached reports whether the parse→optimize→featurize stages
	// were skipped by a plan-cache hit.
	PlanCached bool `json:"plan_cached"`
}

// Predict runs one SQL statement through the full pipeline against the
// named database and model (either may be empty when unambiguous). The
// predict stage coalesces with other concurrent singles via the
// scheduler. When the session's tracer samples the request, every
// pipeline stage records a span; slow requests land in the tracer's
// slow-query ring either way.
func (s *Session) Predict(ctx context.Context, dbName, model, sql string) (Prediction, error) {
	tr, begin := s.tracer.Begin()
	p, err := s.predictTraced(ctx, dbName, model, sql, tr)
	// Prefer the resolved names (an empty request name defaults when
	// unambiguous); fall back to the request's own on early failure.
	db, mdl := p.Database, p.Model
	if db == "" {
		db = dbName
	}
	if mdl == "" {
		mdl = model
	}
	s.tracer.Finish(tr, "predict", db, mdl, sql, begin, err)
	return p, err
}

func (s *Session) predictTraced(ctx context.Context, dbName, model, sql string, tr *obs.Trace) (Prediction, error) {
	s.requests.Inc()
	d, err := s.database(dbName)
	if err != nil {
		s.errs.Inc()
		return Prediction{}, err
	}
	est, err := s.estimator(model)
	if err != nil {
		s.errs.Inc()
		return Prediction{}, err
	}
	in, cached, fp, err := d.prepareTraced(ctx, sql, tr)
	if err != nil {
		if !canceled(err) {
			s.errs.Inc()
		}
		return Prediction{}, err
	}
	if cached {
		tr.SetPlanCached()
	}
	if tr != nil {
		// Warm the plan's encoded-graph memo under an explicit span so
		// sampled traces attribute encoding separately from inference.
		// Only estimators that expose their encoder participate; the
		// memo makes the predict stage below reuse the graph, so this
		// moves work into the span rather than adding any.
		if ew, ok := est.(costmodel.EncodeWarmer); ok {
			encStart := time.Now()
			// An encode failure surfaces identically from the predict
			// stage below; don't fail the request twice.
			_ = ew.WarmEncode(in)
			tr.Span(StageEncode, encStart)
		}
	}
	start := time.Now()
	pred, err := s.sched.predictOne(ctx, est, in, tr)
	s.predict.Observe(time.Since(start))
	tr.Span(StagePredict, start)
	if err != nil {
		if !canceled(err) {
			s.errs.Inc()
		}
		return Prediction{}, err
	}
	return Prediction{
		Database:      d.name,
		Model:         est.Name(),
		RuntimeSec:    pred,
		OptimizerCost: in.OptimizerCost,
		EstRows:       in.Plan.EstRows,
		Fingerprint:   fp,
		PlanCached:    cached,
	}, nil
}

// BatchItem is one statement's outcome inside a batch: either a runtime
// prediction or that statement's own error. Err is structured per item so
// one malformed statement cannot poison the rest of the batch.
type BatchItem struct {
	RuntimeSec float64
	Err        error
}

// BatchResult is one answered batch request: the resolved database and
// model names (meaningful when the request omitted them) and the
// per-statement outcomes, aligned with the request's statements.
type BatchResult struct {
	Database string
	Model    string
	Items    []BatchItem
}

// PredictBatch runs many SQL statements through the pipeline and drains
// them through Estimator.PredictBatch directly (explicit batches skip the
// scheduler — the caller already did the coalescing). Pipeline failures
// land in the item's Err and the healthy remainder still predicts. The
// error return is reserved for request-level failures (unknown
// database/model, closed session).
func (s *Session) PredictBatch(ctx context.Context, dbName, model string, sqls []string) (BatchResult, error) {
	s.requests.Inc()
	d, err := s.database(dbName)
	if err != nil {
		s.errs.Inc()
		return BatchResult{}, err
	}
	est, err := s.estimator(model)
	if err != nil {
		s.errs.Inc()
		return BatchResult{}, err
	}
	items := make([]BatchItem, len(sqls))
	var ins []costmodel.PlanInput
	var idx []int // ins position -> items position
	for i, sql := range sqls {
		in, _, _, err := d.prepare(ctx, sql)
		if err != nil {
			items[i].Err = err
			if !canceled(err) {
				s.errs.Inc()
			}
			continue
		}
		ins = append(ins, in)
		idx = append(idx, i)
	}
	res := BatchResult{Database: d.name, Model: est.Name(), Items: items}
	if len(ins) == 0 {
		return res, nil
	}
	start := time.Now()
	preds, err := est.PredictBatch(ctx, ins)
	if err != nil {
		// The shared batch aborted (first bad input wins): isolate the
		// failure by re-predicting the survivors individually (still
		// worker-pooled) so each item carries exactly its own error.
		parallelEach(len(ins), func(j int) {
			v, perr := est.Predict(ctx, ins[j])
			if perr != nil && !canceled(perr) {
				s.errs.Inc()
			}
			items[idx[j]] = BatchItem{RuntimeSec: v, Err: perr}
		})
	} else {
		for j, p := range preds {
			items[idx[j]].RuntimeSec = p
		}
	}
	s.predict.Observe(time.Since(start))
	return res, nil
}

// PredictPlanned predicts already-prepared inputs (e.g. executed plans
// from a collected workload) through the session's predict stage. It
// exists for callers that own the earlier pipeline stages — the
// experiment harness plans and executes queries itself to obtain exact
// cardinalities — but should still share the serving predict path and its
// metrics. The estimator is passed directly and need not be attached.
func (s *Session) PredictPlanned(ctx context.Context, est costmodel.Estimator, ins []costmodel.PlanInput) ([]float64, error) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	s.requests.Inc()
	start := time.Now()
	preds, err := est.PredictBatch(ctx, ins)
	s.predict.Observe(time.Since(start))
	if err != nil {
		if !canceled(err) {
			s.errs.Inc()
		}
		return nil, err
	}
	return preds, nil
}

// Stats is the session-wide observability snapshot behind /v1/stats.
type Stats struct {
	// CollectedAt is the wall-clock instant this snapshot was taken, so
	// cross-replica support bundles can be ordered and skew-checked;
	// UptimeSec is the monotonic seconds elapsed since the session was
	// created — process uptime for the one-session-per-process
	// `zsdb serve`.
	CollectedAt time.Time `json:"collected_at"`
	UptimeSec   float64   `json:"uptime_sec"`
	// Requests and Errors count Predict/PredictBatch/PredictPlanned
	// calls and their failures (including per-item pipeline failures).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Predict summarizes predict-stage latencies (one observation per
	// request, singles and batches alike).
	Predict metrics.LatencySummary `json:"predict"`
	// Scheduler reports micro-batch coalescing behavior.
	Scheduler SchedulerStats `json:"scheduler"`
	// Databases carries per-database pipeline-stage latencies and plan
	// cache hit rates.
	Databases []DatabaseStats `json:"databases"`
	// Models carries per-model generation counters: how many times each
	// name has been (re-)attached and when the serving generation last
	// changed — the observable trace of adaptation hot-swaps.
	Models []ModelStats `json:"models"`
	// WhatIf reports what-if sweep traffic.
	WhatIf WhatIfStats `json:"whatif"`
}

// WhatIfStats summarizes the session's what-if sweeps: how many ran,
// end-to-end sweep latency, and the distribution of fused batch sizes
// (priced variant × statement pairs per sweep).
type WhatIfStats struct {
	Sweeps     int64                  `json:"sweeps"`
	Latency    metrics.LatencySummary `json:"latency"`
	BatchSizes metrics.WindowSummary  `json:"batch_sizes"`
}

// ModelStats is one attached model's generation view.
type ModelStats struct {
	Name       string    `json:"name"`
	Generation int64     `json:"generation"`
	LastSwap   time.Time `json:"last_swap"`
}

// DatabaseStats is one attached database's pipeline view.
type DatabaseStats struct {
	Database  string                            `json:"db"`
	PlanCache costmodel.PlanCacheStats          `json:"plan_cache"`
	Stages    map[string]metrics.LatencySummary `json:"stages"`
	// WhatIfCache snapshots the what-if layer's prepared-plan cache;
	// absent until the database's first sweep builds the catalog.
	WhatIfCache *costmodel.PlanCacheStats `json:"whatif_cache,omitempty"`
}

// Stats snapshots the session's counters, stage latencies, cache hit
// rates and scheduler behavior.
//
// The registry view — which models and databases exist, and each
// model's generation — is captured in ONE pass under the session lock:
// every model slot's (name, generation, swap time) is copied while the
// same lock that AttachModel's writes take is held, so no snapshot can
// list a model without its generation or observe a generation from a
// different attach than the name list. (A previous draft interleaved
// name listing and slot reads; replica-aggregated cluster stats made
// that torn read observable.) Independently locked recorders — latency
// reservoirs, plan caches, the scheduler — are snapshotted after the
// lock is released: they are monotonic accumulators whose point-in-time
// values carry no cross-field invariant, and keeping them outside
// shortens the hold on the registry lock the request path contends on.
func (s *Session) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		CollectedAt: time.Now(),
		UptimeSec:   time.Since(s.started).Seconds(),
		Requests:    s.requests.Value(),
		Errors:      s.errs.Value(),
	}
	st.Models = make([]ModelStats, 0, len(s.models))
	for _, name := range s.modelNames() {
		slot := s.models[name]
		st.Models = append(st.Models, ModelStats{
			Name:       name,
			Generation: slot.generation,
			LastSwap:   slot.swapped,
		})
	}
	dbs := make([]*dbSession, 0, len(s.dbs))
	for _, name := range s.databaseNames() {
		dbs = append(dbs, s.dbs[name])
	}
	s.mu.RUnlock()
	st.Predict = s.predict.Snapshot()
	st.Scheduler = s.sched.stats()
	st.WhatIf = WhatIfStats{
		Sweeps:     s.sweeps.Value(),
		Latency:    s.sweepLat.Snapshot(),
		BatchSizes: s.sweepSizes.Snapshot(),
	}
	st.Databases = make([]DatabaseStats, 0, len(dbs))
	for _, d := range dbs {
		st.Databases = append(st.Databases, d.stats())
	}
	return st
}

// Closed reports whether Close has been called — the liveness signal
// cluster health probes read without issuing a prediction.
func (s *Session) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Close drains the scheduler (queued singles still get answers) and
// marks the session unusable. It is idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.sched.close()
	return nil
}
