package serving

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// fakeEstimator is a deterministic, instant Estimator so serving tests
// exercise the pipeline, cache and scheduler without training a model.
// Predictions are a fixed function of the optimizer cost.
type fakeEstimator struct {
	name       string
	bias       float64                         // distinguishes model generations
	delay      time.Duration                   // simulated per-batch inference time
	poison     func(costmodel.PlanInput) error // per-input failure injection
	batchCalls atomic.Int64
	batchMax   atomic.Int64
}

func (f *fakeEstimator) Name() string { return f.name }

func (f *fakeEstimator) Fit(ctx context.Context, samples []costmodel.Sample) (*costmodel.FitReport, error) {
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

func (f *fakeEstimator) Predict(ctx context.Context, in costmodel.PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if f.poison != nil {
		if err := f.poison(in); err != nil {
			return 0, err
		}
	}
	return 0.001 + f.bias + in.OptimizerCost*1e-9, nil
}

func (f *fakeEstimator) PredictBatch(ctx context.Context, ins []costmodel.PlanInput) ([]float64, error) {
	f.batchCalls.Add(1)
	for {
		cur := f.batchMax.Load()
		if int64(len(ins)) <= cur || f.batchMax.CompareAndSwap(cur, int64(len(ins))) {
			break
		}
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	out := make([]float64, len(ins))
	for i, in := range ins {
		v, err := f.Predict(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func (f *fakeEstimator) Save(w io.Writer) error { return nil }

// testDB is one generated database plus valid SQL texts for it.
type testDB struct {
	db   *storage.Database
	sqls []string
}

var (
	fixOnce sync.Once
	fixIMDB testDB
	fixSSB  testDB
	fixErr  error
)

// fixtures builds two small schemas (IMDB-like and SSB-like) with a
// handful of executable SQL statements each, shared across tests.
func fixtures(t testing.TB) (testDB, testDB) {
	t.Helper()
	fixOnce.Do(func() {
		build := func(gen func(float64) (*storage.Database, error)) (testDB, error) {
			db, err := gen(0.05)
			if err != nil {
				return testDB{}, err
			}
			recs, err := collect.Run(db, collect.Options{Queries: 12, Seed: 11})
			if err != nil {
				return testDB{}, err
			}
			sqls := make([]string, len(recs))
			for i, r := range recs {
				sqls[i] = r.Query.SQL()
			}
			return testDB{db: db, sqls: sqls}, nil
		}
		if fixIMDB, fixErr = build(datagen.IMDBLike); fixErr != nil {
			return
		}
		fixSSB, fixErr = build(datagen.SSBLike)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixIMDB, fixSSB
}

func TestSessionPredictPipeline(t *testing.T) {
	imdb, _ := fixtures(t)
	sess := NewSession(Config{})
	defer sess.Close()
	if err := sess.AttachDatabase("imdb", imdb.db); err != nil {
		t.Fatal(err)
	}
	est := &fakeEstimator{name: "fake"}
	if err := sess.AttachModel(est); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	sql := imdb.sqls[0]
	// Empty db/model names resolve when unambiguous.
	p1, err := sess.Predict(ctx, "", "", sql)
	if err != nil {
		t.Fatal(err)
	}
	if p1.RuntimeSec <= 0 || p1.Database != "imdb" || p1.Model != "fake" {
		t.Fatalf("prediction = %+v", p1)
	}
	if p1.PlanCached {
		t.Fatal("first statement claims a plan-cache hit")
	}
	// Same statement, reformatted: plan cache must hit.
	p2, err := sess.Predict(ctx, "imdb", "fake", "   "+sql+"  ")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.PlanCached {
		t.Fatal("repeated statement missed the plan cache")
	}
	if p2.RuntimeSec != p1.RuntimeSec || p2.OptimizerCost != p1.OptimizerCost {
		t.Fatalf("cached prediction diverged: %+v vs %+v", p1, p2)
	}

	st := sess.Stats()
	if st.Requests != 2 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Databases) != 1 || st.Databases[0].PlanCache.Hits != 1 {
		t.Fatalf("database stats = %+v", st.Databases)
	}
	if st.Databases[0].Stages[StageParse].Count != 1 {
		t.Fatalf("parse stage should have run exactly once: %+v", st.Databases[0].Stages)
	}
	if st.Predict.Count != 2 || st.Scheduler.Items != 2 {
		t.Fatalf("predict/scheduler stats = %+v / %+v", st.Predict, st.Scheduler)
	}
	if got := sess.Models(); len(got) != 1 || got[0] != "fake" {
		t.Fatalf("models = %v", got)
	}
	if dbs := sess.Databases(); len(dbs) != 1 || dbs[0].Name != "imdb" || dbs[0].Tables == 0 {
		t.Fatalf("databases = %+v", dbs)
	}
}

func TestSessionResolutionAndPipelineErrors(t *testing.T) {
	imdb, ssb := fixtures(t)
	sess := NewSession(Config{})
	defer sess.Close()
	for name, db := range map[string]*storage.Database{"imdb": imdb.db, "ssb": ssb.db} {
		if err := sess.AttachDatabase(name, db); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.AttachDatabase("imdb", imdb.db); err == nil {
		t.Fatal("duplicate database attach accepted")
	}
	sess.AttachModel(&fakeEstimator{name: "a"})
	sess.AttachModel(&fakeEstimator{name: "b"})

	ctx := context.Background()
	tests := []struct {
		name          string
		db, model, q  string
		wantErrTarget error
	}{
		{"ambiguous db", "", "a", imdb.sqls[0], ErrNotFound},
		{"unknown db", "nope", "a", imdb.sqls[0], ErrNotFound},
		{"ambiguous model", "imdb", "", imdb.sqls[0], ErrNotFound},
		{"unknown model", "imdb", "nope", imdb.sqls[0], ErrNotFound},
		{"malformed sql", "imdb", "a", "DROP TABLE title", ErrBadQuery},
		{"unknown table", "imdb", "a", "SELECT COUNT(*) FROM nope", ErrBadQuery},
		{"wrong db for table", "ssb", "a", imdb.sqls[0], ErrBadQuery},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := sess.Predict(ctx, tt.db, tt.model, tt.q)
			if !errors.Is(err, tt.wantErrTarget) {
				t.Fatalf("err = %v, want %v", err, tt.wantErrTarget)
			}
		})
	}
	if st := sess.Stats(); st.Errors != int64(len(tests)) {
		t.Fatalf("error counter = %d, want %d", st.Errors, len(tests))
	}
}

func TestSessionPredictBatchPerItemErrors(t *testing.T) {
	imdb, _ := fixtures(t)
	sess := NewSession(Config{})
	defer sess.Close()
	sess.AttachDatabase("imdb", imdb.db)
	sess.AttachModel(&fakeEstimator{name: "fake"})

	sqls := []string{
		imdb.sqls[0],
		"not even sql",
		imdb.sqls[1],
		"SELECT COUNT(*) FROM missing_table",
	}
	res, err := sess.PredictBatch(context.Background(), "imdb", "fake", sqls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Database != "imdb" || res.Model != "fake" {
		t.Fatalf("resolved names = %q/%q", res.Database, res.Model)
	}
	items := res.Items
	if len(items) != len(sqls) {
		t.Fatalf("%d items for %d statements", len(items), len(sqls))
	}
	for i, wantOK := range []bool{true, false, true, false} {
		if wantOK && (items[i].Err != nil || items[i].RuntimeSec <= 0) {
			t.Fatalf("item %d should have predicted: %+v", i, items[i])
		}
		if !wantOK && !errors.Is(items[i].Err, ErrBadQuery) {
			t.Fatalf("item %d should carry a bad-query error: %+v", i, items[i])
		}
	}

	// Request-level failures stay top-level.
	if _, err := sess.PredictBatch(context.Background(), "imdb", "nope", sqls); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown model err = %v", err)
	}
}

// TestSessionBatchFallbackIsolation poisons one input at the estimator
// level: PredictBatch aborts wholesale, and the session must fall back to
// per-item prediction so only the poisoned statement errors.
func TestSessionBatchFallbackIsolation(t *testing.T) {
	imdb, _ := fixtures(t)
	poisonSQL := costmodel.Fingerprint(imdb.sqls[2])
	est := &fakeEstimator{
		name: "fake",
		poison: func(in costmodel.PlanInput) error {
			if costmodel.Fingerprint(in.Query.SQL()) == poisonSQL {
				return fmt.Errorf("poisoned input")
			}
			return nil
		},
	}
	sess := NewSession(Config{})
	defer sess.Close()
	sess.AttachDatabase("imdb", imdb.db)
	sess.AttachModel(est)

	sqls := []string{imdb.sqls[0], imdb.sqls[2], imdb.sqls[1]}
	res, err := sess.PredictBatch(context.Background(), "", "", sqls)
	if err != nil {
		t.Fatal(err)
	}
	// Omitted names come back resolved.
	if res.Database != "imdb" || res.Model != "fake" {
		t.Fatalf("resolved names = %q/%q", res.Database, res.Model)
	}
	items := res.Items
	if items[1].Err == nil {
		t.Fatal("poisoned item reported no error")
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("healthy items poisoned by batch abort: %+v", items)
	}
	if items[0].RuntimeSec <= 0 || items[2].RuntimeSec <= 0 {
		t.Fatalf("healthy items missing predictions: %+v", items)
	}
}

func TestSessionPredictPlanned(t *testing.T) {
	imdb, _ := fixtures(t)
	recs, err := collect.Run(imdb.db, collect.Options{Queries: 8, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	ins := costmodel.Inputs(costmodel.FromRecords(imdb.db, recs))
	sess := NewSession(Config{})
	defer sess.Close()
	// PredictPlanned takes the estimator directly: no attach needed.
	preds, err := sess.PredictPlanned(context.Background(), &fakeEstimator{name: "fake"}, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(ins) {
		t.Fatalf("%d predictions for %d inputs", len(preds), len(ins))
	}
	if st := sess.Stats(); st.Predict.Count != 1 || st.Requests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSessionConcurrentMultiDB hammers one Session from many goroutines
// across two attached databases and two models — the -race regression
// test for the serving layer's concurrency story.
func TestSessionConcurrentMultiDB(t *testing.T) {
	imdb, ssb := fixtures(t)
	sess := NewSession(Config{MaxWait: 200 * time.Microsecond})
	sess.AttachDatabase("imdb", imdb.db)
	sess.AttachDatabase("ssb", ssb.db)
	estA := &fakeEstimator{name: "a"}
	estB := &fakeEstimator{name: "b"}
	sess.AttachModel(estA)
	sess.AttachModel(estB)

	dbs := []testDB{imdb, ssb}
	dbNames := []string{"imdb", "ssb"}
	models := []string{"a", "b"}
	const goroutines = 12
	const iters = 30
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d := (g + i) % 2
				model := models[i%2]
				switch i % 4 {
				case 0, 1:
					sql := dbs[d].sqls[(g+i)%len(dbs[d].sqls)]
					if _, err := sess.Predict(ctx, dbNames[d], model, sql); err != nil {
						errCh <- fmt.Errorf("goroutine %d predict: %w", g, err)
						return
					}
				case 2:
					if _, err := sess.PredictBatch(ctx, dbNames[d], model, dbs[d].sqls[:4]); err != nil {
						errCh <- fmt.Errorf("goroutine %d batch: %w", g, err)
						return
					}
				case 3:
					_ = sess.Stats()
					_ = sess.Databases()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := sess.Stats()
	if st.Errors != 0 {
		t.Fatalf("hammer produced %d errors", st.Errors)
	}
	if st.Scheduler.Items == 0 || st.Predict.Count == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Predict(ctx, "imdb", "a", imdb.sqls[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("predict after close = %v, want ErrClosed", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

// TestSessionHotSwap replaces an attached model repeatedly and checks a
// long-lived server accumulates no scheduler queues (one per model name,
// ever) and that predictions drain through the newest generation — even
// for a request that resolved the old estimator just before the swap.
func TestSessionHotSwap(t *testing.T) {
	imdb, _ := fixtures(t)
	sess := NewSession(Config{})
	defer sess.Close()
	sess.AttachDatabase("imdb", imdb.db)

	for gen := 0; gen < 3; gen++ {
		est := &fakeEstimator{name: "fake", bias: float64(gen)}
		if err := sess.AttachModel(est); err != nil {
			t.Fatal(err)
		}
		p, err := sess.Predict(context.Background(), "imdb", "fake", imdb.sqls[gen%len(imdb.sqls)])
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		if p.RuntimeSec < float64(gen) {
			t.Fatalf("generation %d: prediction %v served by an old generation", gen, p.RuntimeSec)
		}
	}
	sess.sched.mu.RLock()
	queues := len(sess.sched.queues)
	sess.sched.mu.RUnlock()
	if queues != 1 {
		t.Fatalf("%d scheduler queues after 3 hot-swaps, want 1 per model name", queues)
	}

	// A stale estimator reference still lands on the name's queue and
	// drains through the current generation.
	stale := &fakeEstimator{name: "fake", bias: 0}
	v, err := sess.sched.predictOne(context.Background(), stale, costmodel.PlanInput{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v < 2 {
		t.Fatalf("stale reference predicted %v, want the latest generation (bias 2)", v)
	}
}

// cancelAfterN is a context whose Err() starts reporting Canceled after
// n calls — the pipeline checks ctx between stages, so n selects exactly
// where mid-pipeline the cancellation lands (0 = before parse, 1 =
// between parse and optimize, 2 = between optimize and featurize).
type cancelAfterN struct {
	context.Context
	remaining atomic.Int32
}

func newCancelAfterN(n int32) *cancelAfterN {
	c := &cancelAfterN{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *cancelAfterN) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestSessionCancellationMidPipeline cancels the caller's context at
// each point of the parse→optimize→featurize chain and checks the
// pipeline stops where it should: earlier stages ran, later stages never
// did, the error is the bare ctx error (not ErrBadQuery — the statement
// was fine), and client cancellations stay out of the Errors stat.
func TestSessionCancellationMidPipeline(t *testing.T) {
	imdb, _ := fixtures(t)
	tests := []struct {
		name       string
		checks     int32
		wantStages []string // stages that must have run exactly once
	}{
		{"before parse", 0, nil},
		{"between parse and optimize", 1, []string{StageParse}},
		{"between optimize and featurize", 2, []string{StageParse, StageOptimize}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sess := NewSession(Config{})
			defer sess.Close()
			sess.AttachDatabase("imdb", imdb.db)
			sess.AttachModel(&fakeEstimator{name: "fake"})
			_, err := sess.Predict(newCancelAfterN(tt.checks), "imdb", "fake", imdb.sqls[0])
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if errors.Is(err, ErrBadQuery) {
				t.Fatal("cancellation wrapped in ErrBadQuery: the statement was fine")
			}
			st := sess.Stats()
			if st.Errors != 0 {
				t.Fatalf("client cancellation counted as a serving error: %+v", st)
			}
			ran := map[string]bool{}
			for _, s := range tt.wantStages {
				ran[s] = true
			}
			for _, stage := range []string{StageParse, StageOptimize, StageFeaturize} {
				got := st.Databases[0].Stages[stage].Count
				var want int64
				if ran[stage] {
					want = 1
				}
				if got != want {
					t.Fatalf("stage %s ran %d times, want %d", stage, got, want)
				}
			}
		})
	}
}

// TestSessionCancellationDuringPredictStage cancels while the predict
// stage is in flight (a slow estimator): the pipeline stages all ran,
// the caller gets its ctx error, and Errors stays zero.
func TestSessionCancellationDuringPredictStage(t *testing.T) {
	imdb, _ := fixtures(t)
	sess := NewSession(Config{})
	defer sess.Close()
	sess.AttachDatabase("imdb", imdb.db)
	sess.AttachModel(&fakeEstimator{name: "fake", delay: 100 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond) // parse/optimize are µs-fast; predict holds for 100ms
		cancel()
	}()
	_, err := sess.Predict(ctx, "imdb", "fake", imdb.sqls[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := sess.Stats()
	if st.Errors != 0 {
		t.Fatalf("mid-predict cancellation counted as a serving error: %+v", st)
	}
	if st.Databases[0].Stages[StageParse].Count != 1 {
		t.Fatalf("parse never ran: %+v", st.Databases[0].Stages)
	}
}

// TestSessionBatchCancellation checks PredictBatch's prepare loop also
// honors the caller's context and keeps cancellations off the error
// counter.
func TestSessionBatchCancellation(t *testing.T) {
	imdb, _ := fixtures(t)
	sess := NewSession(Config{})
	defer sess.Close()
	sess.AttachDatabase("imdb", imdb.db)
	sess.AttachModel(&fakeEstimator{name: "fake"})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sess.PredictBatch(ctx, "imdb", "fake", imdb.sqls[:3])
	if err != nil {
		t.Fatalf("request-level err = %v; cancellation is per item", err)
	}
	for i, item := range res.Items {
		if !errors.Is(item.Err, context.Canceled) {
			t.Fatalf("item %d err = %v, want context.Canceled", i, item.Err)
		}
	}
	if st := sess.Stats(); st.Errors != 0 {
		t.Fatalf("canceled batch counted as serving errors: %+v", st)
	}
}

// TestSessionStatsGenerations checks the per-model generation counters
// and the uptime field: attach bumps to 1, every hot-swap increments and
// refreshes the swap time.
func TestSessionStatsGenerations(t *testing.T) {
	imdb, _ := fixtures(t)
	sess := NewSession(Config{})
	defer sess.Close()
	sess.AttachDatabase("imdb", imdb.db)
	if err := sess.AttachModel(&fakeEstimator{name: "fake"}); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if len(st.Models) != 1 || st.Models[0].Name != "fake" || st.Models[0].Generation != 1 {
		t.Fatalf("models = %+v, want fake at generation 1", st.Models)
	}
	if st.Models[0].LastSwap.IsZero() {
		t.Fatal("attach did not record a swap time")
	}
	if st.UptimeSec <= 0 {
		t.Fatalf("uptime = %v, want > 0", st.UptimeSec)
	}
	firstSwap := st.Models[0].LastSwap

	time.Sleep(time.Millisecond)
	if err := sess.AttachModel(&fakeEstimator{name: "fake", bias: 1}); err != nil {
		t.Fatal(err)
	}
	sess.AttachModel(&fakeEstimator{name: "other"})
	st = sess.Stats()
	if len(st.Models) != 2 {
		t.Fatalf("models = %+v", st.Models)
	}
	// Sorted by name: fake then other.
	if st.Models[0].Generation != 2 || !st.Models[0].LastSwap.After(firstSwap) {
		t.Fatalf("hot-swap not reflected: %+v", st.Models[0])
	}
	if st.Models[1].Name != "other" || st.Models[1].Generation != 1 {
		t.Fatalf("models = %+v", st.Models)
	}
	gen, swapped, err := sess.ModelGeneration("fake")
	if err != nil || gen != 2 || swapped != st.Models[0].LastSwap {
		t.Fatalf("ModelGeneration = %d/%v (err %v)", gen, swapped, err)
	}
	if _, _, err := sess.ModelGeneration("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown model generation err = %v", err)
	}
}

// TestSessionCachedPlan checks the feedback join surface: a predicted
// statement's fingerprint resolves to its retained PlanInput without
// touching the cache's traffic stats.
func TestSessionCachedPlan(t *testing.T) {
	imdb, _ := fixtures(t)
	sess := NewSession(Config{})
	defer sess.Close()
	sess.AttachDatabase("imdb", imdb.db)
	sess.AttachModel(&fakeEstimator{name: "fake"})

	p, err := sess.Predict(context.Background(), "imdb", "fake", imdb.sqls[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint == "" {
		t.Fatal("prediction carries no fingerprint")
	}
	in, ok, err := sess.CachedPlan("imdb", p.Fingerprint)
	if err != nil || !ok {
		t.Fatalf("cached plan lookup: ok=%v err=%v", ok, err)
	}
	if in.Plan == nil || in.Query == nil || in.OptimizerCost != p.OptimizerCost {
		t.Fatalf("retained input incomplete: %+v", in)
	}
	if _, ok, _ := sess.CachedPlan("imdb", "never-predicted"); ok {
		t.Fatal("lookup hit for an unknown fingerprint")
	}
	if _, _, err := sess.CachedPlan("nope", p.Fingerprint); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown db err = %v", err)
	}
	hits := sess.Stats().Databases[0].PlanCache.Hits
	if hits != 0 {
		t.Fatalf("CachedPlan counted as cache traffic: %d hits", hits)
	}
}

// TestSessionCanceledClientNotAnError checks an impatient client's
// context expiry is surfaced as a ctx error but kept out of the Errors
// stat — operators alert on Errors, and a healthy server under client
// timeouts is not erroring.
func TestSessionCanceledClientNotAnError(t *testing.T) {
	imdb, _ := fixtures(t)
	sess := NewSession(Config{})
	defer sess.Close()
	sess.AttachDatabase("imdb", imdb.db)
	sess.AttachModel(&fakeEstimator{name: "fake", delay: 50 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := sess.Predict(ctx, "imdb", "fake", imdb.sqls[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if st := sess.Stats(); st.Errors != 0 {
		t.Fatalf("client timeout counted as a serving error: %+v", st)
	}
}

// TestSessionCloseDrains checks shutdown semantics: requests accepted
// before Close still get answers; requests after Close are rejected.
func TestSessionCloseDrains(t *testing.T) {
	imdb, _ := fixtures(t)
	sess := NewSession(Config{MaxWait: 5 * time.Millisecond})
	sess.AttachDatabase("imdb", imdb.db)
	est := &fakeEstimator{name: "fake", delay: 2 * time.Millisecond}
	sess.AttachModel(est)

	const n = 16
	var wg sync.WaitGroup
	results := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := sess.Predict(context.Background(), "imdb", "fake", imdb.sqls[i%len(imdb.sqls)])
			results[i] = err
		}(i)
	}
	time.Sleep(time.Millisecond)
	sess.Close()
	wg.Wait()
	for i, err := range results {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("request %d: %v (want success or ErrClosed)", i, err)
		}
	}
}
