package serving

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsSingleLockPassUnderHotSwap is the regression net for the
// torn-read audit of Session.Stats: while models hot-swap (generation
// bumps) and new models attach concurrently, every snapshot must be
// internally consistent — each listed model carries the generation its
// slot held in the same locked pass that listed it, names stay sorted
// and duplicate-free, and no model ever appears with a zero generation
// (the shape a name-list/slot-read interleave would produce). Run under
// -race in CI.
func TestStatsSingleLockPassUnderHotSwap(t *testing.T) {
	sess := NewSession(Config{})
	defer sess.Close()
	if err := sess.AttachModel(&fakeEstimator{name: "m0"}); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Swapper: hot-swap m0 continuously and attach fresh names.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if err := sess.AttachModel(&fakeEstimator{name: "m0", bias: float64(i)}); err != nil {
				t.Errorf("hot-swap: %v", err)
				return
			}
			if i%16 == 0 {
				name := string(rune('a' + (i/16)%26))
				if err := sess.AttachModel(&fakeEstimator{name: "extra-" + name}); err != nil {
					t.Errorf("attach: %v", err)
					return
				}
			}
		}
	}()
	// Reader: snapshot and check invariants.
	deadline := time.Now().Add(300 * time.Millisecond)
	swapsSeen := int64(0)
	for time.Now().Before(deadline) {
		st := sess.Stats()
		if len(st.Models) == 0 {
			t.Fatal("snapshot lost all models")
		}
		prev := ""
		for _, m := range st.Models {
			if m.Generation < 1 {
				t.Fatalf("model %q listed with generation %d: torn registry read", m.Name, m.Generation)
			}
			if m.Name <= prev {
				t.Fatalf("model list unsorted or duplicated: %q after %q", m.Name, prev)
			}
			if m.Name == "m0" {
				swapsSeen = m.Generation
			}
			if m.LastSwap.IsZero() {
				t.Fatalf("model %q has no swap timestamp", m.Name)
			}
			prev = m.Name
		}
	}
	stop.Store(true)
	wg.Wait()
	if swapsSeen < 2 {
		t.Fatalf("reader observed generation %d; the swapper never ran", swapsSeen)
	}
	// The final snapshot agrees with the registry's own accessors.
	st := sess.Stats()
	gen, _, err := sess.ModelGeneration("m0")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range st.Models {
		if m.Name == "m0" && m.Generation != gen {
			t.Fatalf("quiesced snapshot generation %d != registry %d", m.Generation, gen)
		}
	}
	if models, _ := sess.Counts(); models != len(st.Models) {
		t.Fatalf("Counts models %d != snapshot models %d at quiesce", models, len(st.Models))
	}
}
