package serving

import (
	"context"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/obs"
)

// warmingEstimator is a fakeEstimator that also implements
// costmodel.EncodeWarmer, so sampled traces get an explicit encode span
// without training a real graph model.
type warmingEstimator struct {
	fakeEstimator
	warmed int
}

func (w *warmingEstimator) WarmEncode(in costmodel.PlanInput) error {
	w.warmed++
	return nil
}

// TestPredictTraceSpans pins the sampled-request contract: all five
// pipeline stages (parse, optimize, featurize, encode, predict) appear
// as spans, the scheduler attributes the flushed batch, and the sealed
// trace lands in the tracer's recent ring with the resolved names.
func TestPredictTraceSpans(t *testing.T) {
	imdb, _ := fixtures(t)
	tracer := obs.NewTracer(obs.TraceConfig{SampleEvery: 1, RingSize: 8})
	sess := NewSession(Config{Tracer: tracer})
	defer sess.Close()
	if err := sess.AttachDatabase("imdb", imdb.db); err != nil {
		t.Fatal(err)
	}
	est := &warmingEstimator{fakeEstimator: fakeEstimator{name: "fake"}}
	if err := sess.AttachModel(est); err != nil {
		t.Fatal(err)
	}

	if _, err := sess.Predict(context.Background(), "imdb", "fake", imdb.sqls[0]); err != nil {
		t.Fatal(err)
	}
	snap := tracer.Snapshot(0)
	if len(snap.Recent) != 1 {
		t.Fatalf("recent ring has %d traces, want 1", len(snap.Recent))
	}
	tr := snap.Recent[0]
	if tr.Op != "predict" || tr.DB != "imdb" || tr.Model != "fake" || tr.Query != imdb.sqls[0] {
		t.Fatalf("trace envelope = %+v", tr)
	}
	want := []string{StageParse, StageOptimize, StageFeaturize, StageEncode, StagePredict}
	if len(tr.Spans) != len(want) {
		t.Fatalf("got %d spans %v, want %v", len(tr.Spans), tr.Spans, want)
	}
	for i, name := range want {
		if tr.Spans[i].Name != name {
			t.Fatalf("span %d is %q, want %q (all: %+v)", i, tr.Spans[i].Name, name, tr.Spans)
		}
	}
	if est.warmed != 1 {
		t.Fatalf("WarmEncode called %d times, want 1", est.warmed)
	}
	if tr.BatchSize < 1 {
		t.Fatalf("scheduler attribution missing: batch_size = %d", tr.BatchSize)
	}
	if tr.CoalesceUs < 0 || tr.TotalUs <= 0 {
		t.Fatalf("timing fields = coalesce %dus total %dus", tr.CoalesceUs, tr.TotalUs)
	}

	// A repeated shape hits the plan cache: prepare spans vanish, the
	// trace says why.
	if _, err := sess.Predict(context.Background(), "imdb", "fake", imdb.sqls[0]); err != nil {
		t.Fatal(err)
	}
	tr = tracer.Snapshot(0).Recent[0]
	if !tr.PlanCached {
		t.Fatalf("second trace should be plan-cached: %+v", tr)
	}
	for _, sp := range tr.Spans {
		if sp.Name == StageParse || sp.Name == StageOptimize || sp.Name == StageFeaturize {
			t.Fatalf("plan-cached trace still has prepare span %q", sp.Name)
		}
	}
}

// TestPredictSlowLogAlwaysOn pins that a slow request is captured even
// when sampling is off: the envelope (no spans) lands in the slow ring.
func TestPredictSlowLogAlwaysOn(t *testing.T) {
	imdb, _ := fixtures(t)
	tracer := obs.NewTracer(obs.TraceConfig{SlowThreshold: time.Microsecond, RingSize: 8})
	sess := NewSession(Config{Tracer: tracer})
	defer sess.Close()
	if err := sess.AttachDatabase("imdb", imdb.db); err != nil {
		t.Fatal(err)
	}
	if err := sess.AttachModel(&fakeEstimator{name: "fake", delay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Predict(context.Background(), "imdb", "fake", imdb.sqls[0]); err != nil {
		t.Fatal(err)
	}
	snap := tracer.Snapshot(0)
	if len(snap.Recent) != 0 {
		t.Fatalf("sampling off but recent ring holds %d traces", len(snap.Recent))
	}
	if len(snap.SlowQueries) != 1 {
		t.Fatalf("slow ring has %d traces, want 1", len(snap.SlowQueries))
	}
	slow := snap.SlowQueries[0]
	if !slow.Slow || slow.Sampled || len(slow.Spans) != 0 || slow.Query != imdb.sqls[0] {
		t.Fatalf("slow envelope = %+v", slow)
	}
}

// TestPredictTracingOffAllocs pins the zero-overhead contract: a
// steady-state Predict performs exactly as many allocations with an
// attached-but-idle tracer (sampling off, no slow threshold) as with no
// tracer at all.
func TestPredictTracingOffAllocs(t *testing.T) {
	imdb, _ := fixtures(t)
	ctx := context.Background()

	measure := func(tracer *obs.Tracer) float64 {
		sess := NewSession(Config{Tracer: tracer})
		defer sess.Close()
		if err := sess.AttachDatabase("imdb", imdb.db); err != nil {
			t.Fatal(err)
		}
		if err := sess.AttachModel(&fakeEstimator{name: "fake"}); err != nil {
			t.Fatal(err)
		}
		// Warm the plan cache and the scheduler queue goroutine.
		if _, err := sess.Predict(ctx, "imdb", "fake", imdb.sqls[0]); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(100, func() {
			if _, err := sess.Predict(ctx, "imdb", "fake", imdb.sqls[0]); err != nil {
				t.Fatal(err)
			}
		})
	}

	base := measure(nil)
	idle := measure(obs.NewTracer(obs.TraceConfig{}))
	if idle > base {
		t.Fatalf("idle tracer adds allocations: %.1f/req vs %.1f/req baseline", idle, base)
	}
}

// BenchmarkPredictTraceOverhead measures the per-request cost of the
// tracing hooks (E12): no tracer at all, an attached-but-idle tracer
// (the production default), and worst-case every-request sampling.
func BenchmarkPredictTraceOverhead(b *testing.B) {
	imdb, _ := fixtures(b)
	ctx := context.Background()
	for _, cfg := range []struct {
		name   string
		tracer *obs.Tracer
	}{
		{"none", nil},
		{"off", obs.NewTracer(obs.TraceConfig{})},
		{"sample1", obs.NewTracer(obs.TraceConfig{SampleEvery: 1})},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			sess := NewSession(Config{Tracer: cfg.tracer})
			defer sess.Close()
			if err := sess.AttachDatabase("imdb", imdb.db); err != nil {
				b.Fatal(err)
			}
			if err := sess.AttachModel(&fakeEstimator{name: "fake"}); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Predict(ctx, "imdb", "fake", imdb.sqls[0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Predict(ctx, "imdb", "fake", imdb.sqls[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
