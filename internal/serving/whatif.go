package serving

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

// WhatIf runs one what-if sweep against the named database and model
// (either may be empty when unambiguous): enumerate or validate index
// candidates, plan the workload under the baseline and one hypothetical
// variant per candidate, price the whole cross product through the
// estimator's fused batch path, and return the candidates ranked by
// predicted workload runtime.
//
// Request-level failures map onto the session's sentinels: an unknown
// database or model wraps ErrNotFound; an empty workload, a malformed
// or unresolvable candidate, or a statement that fails the pipeline
// wraps ErrBadQuery (an advise request with a broken workload should
// error loudly, not silently drop work). A canceled context returns the
// context's error bare — including mid-sweep, between planning steps.
// Per-(variant × statement) pricing failures stay structured inside the
// report and do not fail the request.
//
// Workload statements run through the database's regular prepare
// pipeline first, so the sweep warms the same plan cache predictions
// use and reuses it on repeats.
func (s *Session) WhatIf(ctx context.Context, dbName, model string, req whatif.Request) (*whatif.Report, error) {
	s.requests.Inc()
	d, err := s.database(dbName)
	if err != nil {
		s.errs.Inc()
		return nil, err
	}
	est, err := s.estimator(model)
	if err != nil {
		s.errs.Inc()
		return nil, err
	}
	if len(req.SQL) == 0 {
		s.errs.Inc()
		return nil, fmt.Errorf("%w: %w", whatif.ErrEmptyWorkload, ErrBadQuery)
	}

	// Parse and baseline-plan the workload through the regular pipeline;
	// the parsed queries feed enumeration and the sweep.
	stmts := make([]whatif.Statement, len(req.SQL))
	queries := make([]*query.Query, len(req.SQL))
	for i, sql := range req.SQL {
		in, _, fp, err := d.prepare(ctx, sql)
		if err != nil {
			if !canceled(err) {
				s.errs.Inc()
				err = fmt.Errorf("statement %d: %w", i, err)
			}
			return nil, err
		}
		stmts[i] = whatif.Statement{SQL: sql, Fingerprint: fp, Query: in.Query}
		queries[i] = in.Query
	}

	cands, err := whatif.Enumerate(d.db.Schema, queries, req.Candidates, req.MaxCandidates)
	if err != nil {
		s.errs.Inc()
		if errors.Is(err, whatif.ErrBadCandidate) {
			err = fmt.Errorf("%w: %w", err, ErrBadQuery)
		}
		return nil, err
	}
	variants := make([]whatif.Variant, len(cands))
	for i, c := range cands {
		variants[i] = whatif.Variant{Name: c.Index, Indexes: []string{c.Index}}
	}
	if len(variants) == 0 {
		s.errs.Inc()
		return nil, fmt.Errorf("%w: no index candidates for this workload: %w", whatif.ErrNoVariants, ErrBadQuery)
	}

	start := time.Now()
	rep, err := d.catalog(s.cfg.PlanCacheSize).Sweep(ctx, est, stmts, variants)
	s.sweepLat.Observe(time.Since(start))
	if err != nil {
		if !canceled(err) {
			s.errs.Inc()
		}
		return nil, err
	}
	s.sweeps.Inc()
	s.sweepSizes.Observe(float64(rep.Items))
	rep.Database = d.name
	rep.Model = est.Name()
	rep.Candidates = cands
	return rep, nil
}
