package serving

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/whatif"
)

func whatIfSession(t *testing.T) (*Session, testDB, *fakeEstimator) {
	t.Helper()
	imdb, _ := fixtures(t)
	sess := NewSession(Config{})
	t.Cleanup(func() { sess.Close() })
	if err := sess.AttachDatabase("imdb", imdb.db); err != nil {
		t.Fatal(err)
	}
	est := &fakeEstimator{name: "fake"}
	if err := sess.AttachModel(est); err != nil {
		t.Fatal(err)
	}
	return sess, imdb, est
}

func TestSessionWhatIf(t *testing.T) {
	sess, imdb, est := whatIfSession(t)
	ctx := context.Background()

	rep, err := sess.WhatIf(ctx, "", "", whatif.Request{SQL: imdb.sqls[:4]})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Database != "imdb" || rep.Model != "fake" {
		t.Fatalf("report names = (%q, %q)", rep.Database, rep.Model)
	}
	if len(rep.Candidates) == 0 {
		t.Fatal("no candidates enumerated for the workload")
	}
	if len(rep.Variants) != len(rep.Candidates) {
		t.Fatalf("%d variants for %d candidates", len(rep.Variants), len(rep.Candidates))
	}
	if want := (len(rep.Candidates) + 1) * 4; rep.Items != want {
		t.Fatalf("Items = %d, want %d", rep.Items, want)
	}
	if rep.Baseline.TotalSec <= 0 {
		t.Fatalf("baseline = %+v", rep.Baseline)
	}
	for i := 1; i < len(rep.Variants); i++ {
		if rep.Variants[i-1].TotalSec > rep.Variants[i].TotalSec {
			t.Fatalf("variants not ranked: %v before %v", rep.Variants[i-1].TotalSec, rep.Variants[i].TotalSec)
		}
	}
	// The sweep priced the whole cross product through one fused batch.
	if calls := est.batchCalls.Load(); calls != 1 {
		t.Fatalf("sweep issued %d batch calls, want 1", calls)
	}

	// Explicit candidates skip enumeration and are echoed back.
	rep2, err := sess.WhatIf(ctx, "imdb", "fake", whatif.Request{
		SQL:        imdb.sqls[:2],
		Candidates: []string{"movie_companies.movie_id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Candidates) != 1 || rep2.Candidates[0].Index != "movie_companies.movie_id" ||
		rep2.Candidates[0].Source != whatif.SourceUser {
		t.Fatalf("candidates = %+v", rep2.Candidates)
	}

	st := sess.Stats()
	if st.WhatIf.Sweeps != 2 {
		t.Fatalf("sweeps = %d, want 2", st.WhatIf.Sweeps)
	}
	if st.WhatIf.Latency.Count != 2 || st.WhatIf.BatchSizes.Count != 2 {
		t.Fatalf("whatif stats = %+v", st.WhatIf)
	}
	if st.WhatIf.BatchSizes.Max != float64(rep.Items) {
		t.Fatalf("batch size max = %v, want %v", st.WhatIf.BatchSizes.Max, rep.Items)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d after healthy sweeps", st.Errors)
	}
	if len(st.Databases) != 1 || st.Databases[0].WhatIfCache == nil {
		t.Fatalf("database stats missing what-if cache: %+v", st.Databases)
	}
}

func TestSessionWhatIfErrors(t *testing.T) {
	sess, imdb, _ := whatIfSession(t)
	ctx := context.Background()

	if _, err := sess.WhatIf(ctx, "nosuch", "", whatif.Request{SQL: imdb.sqls[:1]}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown db err = %v, want ErrNotFound", err)
	}
	if _, err := sess.WhatIf(ctx, "", "nosuch", whatif.Request{SQL: imdb.sqls[:1]}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown model err = %v, want ErrNotFound", err)
	}
	if _, err := sess.WhatIf(ctx, "", "", whatif.Request{}); !errors.Is(err, ErrBadQuery) || !errors.Is(err, whatif.ErrEmptyWorkload) {
		t.Fatalf("empty workload err = %v, want ErrBadQuery+ErrEmptyWorkload", err)
	}
	if _, err := sess.WhatIf(ctx, "", "", whatif.Request{SQL: []string{"SELECT nonsense"}}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("unparseable statement err = %v, want ErrBadQuery", err)
	}
	malformed := whatif.Request{SQL: imdb.sqls[:1], Candidates: []string{"no_dot"}}
	if _, err := sess.WhatIf(ctx, "", "", malformed); !errors.Is(err, ErrBadQuery) || !errors.Is(err, whatif.ErrBadCandidate) {
		t.Fatalf("malformed candidate err = %v, want ErrBadQuery+ErrBadCandidate", err)
	}

	errsBefore := sess.Stats().Errors
	if errsBefore == 0 {
		t.Fatal("request-level failures did not count as errors")
	}

	// Mid-sweep cancellation: the estimator stalls past the caller's
	// deadline; the sweep returns the context's error bare and it stays
	// out of the error counters (the client gave up, serving did not
	// fail).
	slow := &fakeEstimator{name: "slow", delay: 200 * time.Millisecond}
	if err := sess.AttachModel(slow); err != nil {
		t.Fatal(err)
	}
	tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	_, err := sess.WhatIf(tctx, "imdb", "slow", whatif.Request{SQL: imdb.sqls[:3]})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-sweep cancellation err = %v, want context.DeadlineExceeded", err)
	}
	st := sess.Stats()
	if st.Errors != errsBefore {
		t.Fatalf("cancellation moved the error counter: %d -> %d", errsBefore, st.Errors)
	}
	if st.WhatIf.Sweeps != 0 {
		t.Fatalf("failed sweeps were counted: %d", st.WhatIf.Sweeps)
	}

	// After Close every sweep fails closed.
	sess.Close()
	if _, err := sess.WhatIf(ctx, "", "", whatif.Request{SQL: imdb.sqls[:1]}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed session err = %v, want ErrClosed", err)
	}
}

// TestPipelineRetainsEncodedGraph pins the hot-path contract the
// encoded-graph memo depends on: the prepared input a plan-cache hit
// returns carries the SAME EncodedPlan as the first preparation, so an
// estimator's graph encoding survives across repeated predictions of
// one query shape.
func TestPipelineRetainsEncodedGraph(t *testing.T) {
	sess, imdb, _ := whatIfSession(t)
	ctx := context.Background()

	d, err := sess.database("imdb")
	if err != nil {
		t.Fatal(err)
	}
	in1, cached, fp, err := d.prepare(ctx, imdb.sqls[0])
	if err != nil || cached {
		t.Fatalf("first prepare = (cached=%v, %v)", cached, err)
	}
	if in1.Enc == nil {
		t.Fatal("prepared input carries no encoding memo")
	}
	in2, cached, _, err := d.prepare(ctx, imdb.sqls[0])
	if err != nil || !cached {
		t.Fatalf("second prepare = (cached=%v, %v)", cached, err)
	}
	if in2.Enc != in1.Enc {
		t.Fatal("plan-cache hit returned a different encoding memo — graph reuse broken")
	}
	peek, ok := d.cache.Peek(fp)
	if !ok || peek.Enc != in1.Enc {
		t.Fatal("cached plan input does not retain the encoding memo")
	}
}
