package sqlparse

import (
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/schema"
)

// fuzzSchema is a tiny hand-built schema (no data generation): two
// joinable tables with every column type the parser resolves against.
func fuzzSchema() *schema.Schema {
	title := &schema.Table{
		Name: "title",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true, DistinctCount: 100},
			{Name: "production_year", Type: schema.TypeInt, DistinctCount: 50},
			{Name: "kind", Type: schema.TypeCategorical, DistinctCount: 5},
			{Name: "rating", Type: schema.TypeFloat, DistinctCount: 90},
		},
		RowCount: 100,
	}
	mc := &schema.Table{
		Name: "movie_companies",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true, DistinctCount: 200},
			{Name: "movie_id", Type: schema.TypeInt, DistinctCount: 100},
			{Name: "company_type_id", Type: schema.TypeInt, DistinctCount: 4},
		},
		RowCount: 200,
	}
	title.ComputePages()
	mc.ComputePages()
	return &schema.Schema{
		Name:   "fuzzdb",
		Tables: []*schema.Table{title, mc},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "movie_companies", FromColumn: "movie_id", ToTable: "title", ToColumn: "id"},
		},
	}
}

// FuzzParse fuzzes the SQL parser against a fixed schema: arbitrary
// input may parse or error, but must never panic — the parser fronts
// raw HTTP request bodies in the serving layer. When a statement does
// parse, its rendered SQL must parse again (the round trip the plan
// cache's by-SQL feedback join leans on).
//
// Seed corpus: f.Add cases below plus testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"SELECT COUNT(*) FROM title",
		"SELECT * FROM title WHERE production_year > 1990;",
		"SELECT MIN(title.production_year) FROM movie_companies, title WHERE title.id = movie_companies.movie_id",
		"SELECT SUM(rating) FROM title GROUP BY kind",
		"select avg(title.rating) from title where rating <= 1.5e1 and production_year <> -3",
		"SELECT COUNT(*) FROM",
		"SELECT FROM WHERE",
		"((((((((((",
		"SELECT COUNT(*) FROM title WHERE production_year > 99999999999999999999999999",
		"\x00SELECT\x00",
		"SELECT COUNT(*) FROM title WHERE kind = kind",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sch := fuzzSchema()
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input, sch)
		if err != nil || q == nil {
			return
		}
		rendered := q.SQL()
		if _, err := Parse(rendered, sch); err != nil {
			t.Fatalf("rendered SQL does not re-parse:\n input    %q\n rendered %q\n err      %v", input, rendered, err)
		}
	})
}
