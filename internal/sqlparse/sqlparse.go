// Package sqlparse parses the SQL subset the engine supports into logical
// queries, resolving names against a schema:
//
//	SELECT <* | agg[, agg...]> FROM t1[, t2...]
//	[WHERE cond [AND cond ...]]
//	[GROUP BY col[, col...]] [;]
//
// where agg is COUNT(*) or SUM/AVG/MIN/MAX(table.column), and cond is
// either an equi-join "a.x = b.y" or a comparison "a.x <op> literal" with a
// numeric literal. Column references may drop the table qualifier when the
// column name is unambiguous across the FROM tables. Keywords are
// case-insensitive.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
)

// tokenKind enumerates lexical token kinds.
type tokenKind int

const (
	tokIdent tokenKind = iota
	tokNumber
	tokSymbol // ( ) , . * ;
	tokOp     // = < <= > >= <>
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes the input. Identifiers are lowercased (our schemas are
// lowercase); keywords are recognized later by text.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[start:i]), start})
		case unicode.IsDigit(c) || c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1])):
			start := i
			i++
			// A signed exponent accepts both marks: strconv renders large
			// values as "1e+26", and rendered queries must re-parse (the
			// plan cache joins feedback by re-parsing rendered SQL).
			for i < len(input) && (unicode.IsDigit(rune(input[i])) || input[i] == '.' || input[i] == 'e' ||
				input[i] == 'E' ||
				((input[i] == '-' || input[i] == '+') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '<':
			if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{tokOp, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sqlparse: unexpected '!' at %d", i)
			}
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case strings.ContainsRune("(),.*;", c):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
	sch  *schema.Schema
	q    *query.Query
	// selectItems holds the select list before name resolution: the select
	// list is parsed before FROM, so unqualified columns resolve only
	// after the tables are known.
	selectItems []selectItem
}

// selectItem is one unresolved select-list entry.
type selectItem struct {
	fn     query.AggFunc
	star   bool
	table  string // may be empty (unqualified)
	column string
	pos    int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return fmt.Errorf("sqlparse: expected %s at %d, got %q", strings.ToUpper(kw), t.pos, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("sqlparse: expected %q at %d, got %q", sym, t.pos, t.text)
	}
	return nil
}

// Parse parses sql into a validated logical query against the schema.
func Parse(sql string, sch *schema.Schema) (*query.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, sch: sch, q: &query.Query{}}
	if err := p.parseSelect(); err != nil {
		return nil, err
	}
	if err := p.q.Validate(); err != nil {
		return nil, fmt.Errorf("sqlparse: %w", err)
	}
	// Every referenced table/column must exist in the schema.
	for _, t := range p.q.Tables {
		if sch.Table(t) == nil {
			return nil, fmt.Errorf("sqlparse: unknown table %q", t)
		}
	}
	return p.q, nil
}

func (p *parser) parseSelect() error {
	if err := p.expectKeyword("select"); err != nil {
		return err
	}
	if err := p.parseSelectList(); err != nil {
		return err
	}
	if err := p.expectKeyword("from"); err != nil {
		return err
	}
	if err := p.parseFromList(); err != nil {
		return err
	}
	if err := p.resolveSelectList(); err != nil {
		return err
	}
	if p.cur().kind == tokIdent && p.cur().text == "where" {
		p.next()
		if err := p.parseConditions(); err != nil {
			return err
		}
	}
	if p.cur().kind == tokIdent && p.cur().text == "group" {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return err
		}
		if err := p.parseGroupBy(); err != nil {
			return err
		}
	}
	if p.cur().kind == tokSymbol && p.cur().text == ";" {
		p.next()
	}
	if t := p.cur(); t.kind != tokEOF {
		return fmt.Errorf("sqlparse: trailing input at %d: %q", t.pos, t.text)
	}
	return nil
}

var aggFuncs = map[string]query.AggFunc{
	"count": query.AggCount,
	"sum":   query.AggSum,
	"avg":   query.AggAvg,
	"min":   query.AggMin,
	"max":   query.AggMax,
}

func (p *parser) parseSelectList() error {
	if p.cur().kind == tokSymbol && p.cur().text == "*" {
		p.next()
		return nil
	}
	for {
		t := p.next()
		fn, ok := aggFuncs[t.text]
		if t.kind != tokIdent || !ok {
			return fmt.Errorf("sqlparse: expected aggregate function or * at %d, got %q", t.pos, t.text)
		}
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		item := selectItem{fn: fn, pos: t.pos}
		if p.cur().kind == tokSymbol && p.cur().text == "*" {
			if fn != query.AggCount {
				return fmt.Errorf("sqlparse: %s(*) is not valid", strings.ToUpper(t.text))
			}
			item.star = true
			p.next()
		} else {
			name := p.next()
			if name.kind != tokIdent {
				return fmt.Errorf("sqlparse: expected column in aggregate at %d, got %q", name.pos, name.text)
			}
			item.column = name.text
			if p.cur().kind == tokSymbol && p.cur().text == "." {
				p.next()
				col := p.next()
				if col.kind != tokIdent {
					return fmt.Errorf("sqlparse: expected column after %q. at %d", name.text, col.pos)
				}
				item.table, item.column = name.text, col.text
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
		p.selectItems = append(p.selectItems, item)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.next()
			continue
		}
		return nil
	}
}

// resolveSelectList materializes the aggregates once FROM tables are known.
func (p *parser) resolveSelectList() error {
	for _, item := range p.selectItems {
		agg := query.Aggregate{Func: item.fn}
		switch {
		case item.star || item.fn == query.AggCount:
			// COUNT(col) behaves as COUNT(*) in this engine (no NULL
			// filtering on the counted column); normalize.
		default:
			col, err := p.resolveColumn(item.table, item.column, item.pos)
			if err != nil {
				return err
			}
			agg.Col = col
		}
		p.q.Aggregates = append(p.q.Aggregates, agg)
	}
	return nil
}

// resolveColumn resolves a possibly-unqualified column against the FROM
// tables. Qualified references validate both halves — the qualifier
// must be a FROM table and the column must exist in its schema —
// because downstream stages (optimizer, featurizers) index the schema
// by these names and must never see a reference the schema cannot
// answer. (Found by fuzzing: "t.nonsense" used to pass straight
// through.)
func (p *parser) resolveColumn(table, column string, pos int) (query.ColumnRef, error) {
	if table != "" {
		inFrom := false
		for _, tname := range p.q.Tables {
			if tname == table {
				inFrom = true
				break
			}
		}
		if !inFrom {
			return query.ColumnRef{}, fmt.Errorf("sqlparse: table %q at %d is not in the FROM list", table, pos)
		}
		tm := p.sch.Table(table)
		if tm == nil || tm.Column(column) == nil {
			return query.ColumnRef{}, fmt.Errorf("sqlparse: unknown column %s.%s", table, column)
		}
		return query.ColumnRef{Table: table, Column: column}, nil
	}
	var found []query.ColumnRef
	for _, tname := range p.q.Tables {
		tm := p.sch.Table(tname)
		if tm != nil && tm.Column(column) != nil {
			found = append(found, query.ColumnRef{Table: tname, Column: column})
		}
	}
	switch len(found) {
	case 1:
		return found[0], nil
	case 0:
		return query.ColumnRef{}, fmt.Errorf("sqlparse: unknown column %q", column)
	default:
		return query.ColumnRef{}, fmt.Errorf("sqlparse: ambiguous column %q (qualify with a table)", column)
	}
}

func (p *parser) parseFromList() error {
	seen := map[string]bool{}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return fmt.Errorf("sqlparse: expected table name at %d, got %q", t.pos, t.text)
		}
		if !seen[t.text] {
			seen[t.text] = true
			p.q.Tables = append(p.q.Tables, t.text)
		}
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.next()
			continue
		}
		return nil
	}
}

// parseColumnRef parses "table.column" or a bare "column" resolved against
// the FROM tables (must be unambiguous).
func (p *parser) parseColumnRef() (query.ColumnRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return query.ColumnRef{}, fmt.Errorf("sqlparse: expected column reference at %d, got %q", t.pos, t.text)
	}
	if p.cur().kind == tokSymbol && p.cur().text == "." {
		p.next()
		col := p.next()
		if col.kind != tokIdent {
			return query.ColumnRef{}, fmt.Errorf("sqlparse: expected column after %q. at %d", t.text, col.pos)
		}
		return query.ColumnRef{Table: t.text, Column: col.text}, nil
	}
	return p.resolveColumn("", t.text, t.pos)
}

var cmpOps = map[string]query.CmpOp{
	"=": query.OpEq, "<": query.OpLt, "<=": query.OpLe,
	">": query.OpGt, ">=": query.OpGe, "<>": query.OpNeq,
}

func (p *parser) parseConditions() error {
	for {
		left, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		opTok := p.next()
		if opTok.kind != tokOp {
			return fmt.Errorf("sqlparse: expected comparison operator at %d, got %q", opTok.pos, opTok.text)
		}
		op := cmpOps[opTok.text]
		rhs := p.cur()
		switch rhs.kind {
		case tokNumber:
			p.next()
			v, err := strconv.ParseFloat(rhs.text, 64)
			if err != nil {
				return fmt.Errorf("sqlparse: bad numeric literal %q at %d", rhs.text, rhs.pos)
			}
			p.q.Filters = append(p.q.Filters, query.Filter{Col: left, Op: op, Value: v})
		case tokIdent:
			right, err := p.parseColumnRef()
			if err != nil {
				return err
			}
			if op != query.OpEq {
				return fmt.Errorf("sqlparse: joins support only equality at %d", opTok.pos)
			}
			p.q.Joins = append(p.q.Joins, query.Join{Left: left, Right: right})
		default:
			return fmt.Errorf("sqlparse: expected literal or column at %d, got %q", rhs.pos, rhs.text)
		}
		if p.cur().kind == tokIdent && p.cur().text == "and" {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseGroupBy() error {
	for {
		col, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		p.q.GroupBy = append(p.q.GroupBy, col)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.next()
			continue
		}
		return nil
	}
}
