package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

func imdbSchema(t *testing.T) *schema.Schema {
	t.Helper()
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	return db.Schema
}

func TestParsePaperExampleQuery(t *testing.T) {
	sch := imdbSchema(t)
	// The paper's Figure 2 example adapted to our schema.
	q, err := Parse(`SELECT MIN(title.production_year) FROM movie_companies, title
		WHERE title.id = movie_companies.movie_id AND title.production_year > 1990
		AND movie_companies.company_type_id = 2;`, sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 || len(q.Joins) != 1 || len(q.Filters) != 2 || len(q.Aggregates) != 1 {
		t.Fatalf("parsed structure wrong: %s", q.SQL())
	}
	if q.Aggregates[0].Func != query.AggMin || q.Aggregates[0].Col.Column != "production_year" {
		t.Fatalf("aggregate = %v", q.Aggregates[0])
	}
	if q.Filters[0].Op != query.OpGt || q.Filters[0].Value != 1990 {
		t.Fatalf("filter = %v", q.Filters[0])
	}
}

func TestParseCountStar(t *testing.T) {
	sch := imdbSchema(t)
	q, err := Parse("SELECT COUNT(*) FROM title", sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggregates) != 1 || q.Aggregates[0].Func != query.AggCount {
		t.Fatalf("aggregates = %v", q.Aggregates)
	}
}

func TestParseSelectStar(t *testing.T) {
	sch := imdbSchema(t)
	q, err := Parse("SELECT * FROM title WHERE title.production_year >= 100", sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggregates) != 0 || len(q.Filters) != 1 || q.Filters[0].Op != query.OpGe {
		t.Fatalf("parsed: %s", q.SQL())
	}
}

func TestParseUnqualifiedColumn(t *testing.T) {
	sch := imdbSchema(t)
	q, err := Parse("SELECT COUNT(*) FROM title WHERE production_year > 50", sch)
	if err != nil {
		t.Fatal(err)
	}
	if q.Filters[0].Col.Table != "title" {
		t.Fatalf("resolved table = %s", q.Filters[0].Col.Table)
	}
}

func TestParseAmbiguousColumnRejected(t *testing.T) {
	sch := imdbSchema(t)
	// movie_id exists in several fact tables.
	_, err := Parse("SELECT COUNT(*) FROM movie_companies, cast_info, title WHERE movie_id = 3 AND movie_companies.movie_id = title.id AND cast_info.movie_id = title.id", sch)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v, want ambiguous column error", err)
	}
}

func TestParseGroupBy(t *testing.T) {
	sch := imdbSchema(t)
	q, err := Parse("SELECT COUNT(*), MAX(season_nr) FROM title GROUP BY kind_id", sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Column != "kind_id" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
}

func TestParseAllOperators(t *testing.T) {
	sch := imdbSchema(t)
	ops := map[string]query.CmpOp{
		"=": query.OpEq, "<": query.OpLt, "<=": query.OpLe,
		">": query.OpGt, ">=": query.OpGe, "<>": query.OpNeq, "!=": query.OpNeq,
	}
	for text, want := range ops {
		q, err := Parse("SELECT COUNT(*) FROM title WHERE production_year "+text+" 10", sch)
		if err != nil {
			t.Fatalf("op %s: %v", text, err)
		}
		if q.Filters[0].Op != want {
			t.Fatalf("op %s parsed as %v", text, q.Filters[0].Op)
		}
	}
}

func TestParseNumericLiterals(t *testing.T) {
	sch := imdbSchema(t)
	for _, lit := range []string{"42", "-3", "3.5", "1e3"} {
		q, err := Parse("SELECT COUNT(*) FROM title WHERE production_year < "+lit, sch)
		if err != nil {
			t.Fatalf("literal %s: %v", lit, err)
		}
		if q.Filters[0].Value == 0 {
			t.Fatalf("literal %s parsed as 0", lit)
		}
	}
}

func TestParseErrors(t *testing.T) {
	sch := imdbSchema(t)
	cases := []string{
		"",
		"SELEKT COUNT(*) FROM title",
		"SELECT COUNT(* FROM title",
		"SELECT COUNT(*) FROM ghost_table",
		"SELECT COUNT(*) FROM title WHERE nosuchcol = 1",
		"SELECT COUNT(*) FROM title WHERE production_year ?? 3",
		"SELECT SUM(*) FROM title",
		"SELECT COUNT(*) FROM title trailing garbage",
		"SELECT COUNT(*) FROM title, movie_companies",                          // disconnected join graph
		"SELECT COUNT(*) FROM title WHERE title.id < movie_companies.movie_id", // non-equi join
	}
	for _, sql := range cases {
		if _, err := Parse(sql, sch); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	sch := imdbSchema(t)
	if _, err := Parse("select count(*) from title where production_year > 1 group by kind_id", sch); err != nil {
		t.Fatal(err)
	}
}

func TestParseDuplicateTableCollapsed(t *testing.T) {
	sch := imdbSchema(t)
	q, err := Parse("SELECT COUNT(*) FROM title, title", sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 1 {
		t.Fatalf("tables = %v", q.Tables)
	}
}

// TestRoundTripGeneratedQueries: every generator query's SQL() rendering
// parses back into a query with identical SQL() — the parser and the
// renderer agree on the dialect.
func TestRoundTripGeneratedQueries(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := query.Synthetic(db, 150, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		sql := q.SQL()
		parsed, err := Parse(sql, db.Schema)
		if err != nil {
			t.Fatalf("round trip parse of %q: %v", sql, err)
		}
		if parsed.SQL() != sql {
			t.Fatalf("round trip mismatch:\n in: %s\nout: %s", sql, parsed.SQL())
		}
	}
}

func TestParsedQueryExecutes(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(`SELECT COUNT(*), MIN(title.production_year) FROM movie_companies, title
		WHERE title.id = movie_companies.movie_id AND movie_companies.company_type_id = 1`, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = storage.Database{} // silence unused import if helpers change
}

func TestLexerRejectsGarbageProperty(t *testing.T) {
	// The lexer either errors or produces tokens that end with EOF; it
	// never panics on arbitrary input.
	sch := imdbSchema(t)
	f := func(s string) bool {
		_, _ = Parse(s, sch) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
