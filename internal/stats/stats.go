// Package stats implements the statistics subsystem: per-column equi-depth
// histograms and most-common-value lists, plus the selectivity and
// cardinality estimation the optimizer uses.
//
// These estimates play the role of PostgreSQL's planner statistics in the
// paper: they drive plan choice and provide the "estimated cardinalities"
// input variant of the zero-shot model. Because generated data contains
// cross-column correlation and the estimator assumes independence, the
// estimates err exactly the way real optimizer estimates do.
package stats

import (
	"math"
	"sort"

	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// Bucket is one equi-depth histogram bucket covering values in [Lo, Hi].
type Bucket struct {
	Lo, Hi   float64
	Count    int
	Distinct int
}

// Histogram is an equi-depth histogram over the non-null values of one
// column.
type Histogram struct {
	Buckets []Bucket
	// Total is the number of non-null values summarized.
	Total int
}

// MCV is one most-common-value entry.
type MCV struct {
	Value float64
	Frac  float64 // fraction of all rows (including nulls)
}

// ColumnStats summarizes one column.
type ColumnStats struct {
	Type          schema.DataType
	RowCount      int
	NullFrac      float64
	DistinctCount int
	Min, Max      float64
	Hist          *Histogram
	MCVs          []MCV
}

// DBStats holds the statistics of every column of a database.
type DBStats struct {
	schema *schema.Schema
	cols   map[string]*ColumnStats // key: table.column
}

// DefaultBuckets and DefaultMCVs are the statistics resolution used
// throughout the system (Postgres' default_statistics_target ballpark).
const (
	DefaultBuckets = 32
	DefaultMCVs    = 8
)

// Collect scans every column of the database and builds statistics with the
// given histogram and MCV resolution. Resolution values < 1 fall back to
// the defaults.
func Collect(db *storage.Database, buckets, mcvs int) *DBStats {
	if buckets < 1 {
		buckets = DefaultBuckets
	}
	if mcvs < 0 {
		mcvs = DefaultMCVs
	}
	s := &DBStats{schema: db.Schema, cols: map[string]*ColumnStats{}}
	for _, tm := range db.Schema.Tables {
		tab := db.Table(tm.Name)
		if tab == nil {
			continue
		}
		for ci, cm := range tm.Columns {
			cs := collectColumn(tab.Cols[ci], cm.Type, buckets, mcvs)
			s.cols[tm.Name+"."+cm.Name] = cs
		}
	}
	return s
}

func collectColumn(col *storage.ColumnData, typ schema.DataType, buckets, mcvs int) *ColumnStats {
	n := col.Len()
	cs := &ColumnStats{Type: typ, RowCount: n}
	if n == 0 {
		return cs
	}
	vals := make([]float64, 0, n)
	nulls := 0
	for r := 0; r < n; r++ {
		if col.IsNull(r) {
			nulls++
			continue
		}
		vals = append(vals, col.AsFloat(r))
	}
	cs.NullFrac = float64(nulls) / float64(n)
	if len(vals) == 0 {
		return cs
	}
	sort.Float64s(vals)
	cs.Min, cs.Max = vals[0], vals[len(vals)-1]

	// Distinct count and value frequencies.
	freq := map[float64]int{}
	for _, v := range vals {
		freq[v]++
	}
	cs.DistinctCount = len(freq)

	// MCVs: top-k by frequency.
	type vf struct {
		v float64
		c int
	}
	ordered := make([]vf, 0, len(freq))
	for v, c := range freq {
		ordered = append(ordered, vf{v, c})
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].c != ordered[b].c {
			return ordered[a].c > ordered[b].c
		}
		return ordered[a].v < ordered[b].v
	})
	k := mcvs
	if k > len(ordered) {
		k = len(ordered)
	}
	for i := 0; i < k; i++ {
		cs.MCVs = append(cs.MCVs, MCV{Value: ordered[i].v, Frac: float64(ordered[i].c) / float64(n)})
	}

	cs.Hist = buildEquiDepth(vals, buckets)
	return cs
}

// buildEquiDepth builds an equi-depth histogram over sorted values.
func buildEquiDepth(sorted []float64, buckets int) *Histogram {
	n := len(sorted)
	if buckets > n {
		buckets = n
	}
	h := &Histogram{Total: n}
	per := n / buckets
	rem := n % buckets
	idx := 0
	for b := 0; b < buckets; b++ {
		size := per
		if b < rem {
			size++
		}
		if size == 0 {
			continue
		}
		lo := sorted[idx]
		hi := sorted[idx+size-1]
		distinct := 1
		for i := idx + 1; i < idx+size; i++ {
			if sorted[i] != sorted[i-1] {
				distinct++
			}
		}
		h.Buckets = append(h.Buckets, Bucket{Lo: lo, Hi: hi, Count: size, Distinct: distinct})
		idx += size
	}
	return h
}

// SelectivityLE estimates P(value <= x) among non-null values.
func (h *Histogram) SelectivityLE(x float64) float64 {
	if h == nil || h.Total == 0 {
		return 0.5
	}
	acc := 0.0
	for _, b := range h.Buckets {
		switch {
		case x >= b.Hi:
			acc += float64(b.Count)
		case x < b.Lo:
			// bucket entirely above x
		default:
			// linear interpolation within the bucket
			width := b.Hi - b.Lo
			frac := 0.5
			if width > 0 {
				frac = (x - b.Lo) / width
			}
			acc += float64(b.Count) * frac
		}
	}
	return clamp01(acc / float64(h.Total))
}

// SelectivityEq estimates P(value == x) among non-null values assuming
// uniform spread of distinct values within buckets.
func (h *Histogram) SelectivityEq(x float64) float64 {
	if h == nil || h.Total == 0 {
		return 0.1
	}
	for _, b := range h.Buckets {
		if x >= b.Lo && x <= b.Hi {
			d := b.Distinct
			if d < 1 {
				d = 1
			}
			return clamp01(float64(b.Count) / float64(d) / float64(h.Total))
		}
	}
	return 0
}

// Column returns the stats for table.column, or nil.
func (s *DBStats) Column(table, column string) *ColumnStats {
	return s.cols[table+"."+column]
}

// FilterSelectivity estimates the fraction of a table's rows satisfying the
// filter. NULL rows never satisfy a comparison.
func (s *DBStats) FilterSelectivity(f query.Filter) float64 {
	cs := s.Column(f.Col.Table, f.Col.Column)
	if cs == nil || cs.RowCount == 0 {
		return 0.33 // Postgres-style default guess
	}
	nonNull := 1 - cs.NullFrac

	// Check MCVs first for equality/inequality.
	if f.Op == query.OpEq || f.Op == query.OpNeq {
		for _, m := range cs.MCVs {
			if m.Value == f.Value {
				if f.Op == query.OpEq {
					return clamp01(m.Frac)
				}
				return clamp01(nonNull - m.Frac)
			}
		}
	}
	var sel float64
	switch f.Op {
	case query.OpEq:
		sel = cs.Hist.SelectivityEq(f.Value)
	case query.OpNeq:
		sel = 1 - cs.Hist.SelectivityEq(f.Value)
	case query.OpLt, query.OpLe:
		sel = cs.Hist.SelectivityLE(f.Value)
		if f.Op == query.OpLt {
			sel -= cs.Hist.SelectivityEq(f.Value)
		}
	case query.OpGt, query.OpGe:
		sel = 1 - cs.Hist.SelectivityLE(f.Value)
		if f.Op == query.OpGe {
			sel += cs.Hist.SelectivityEq(f.Value)
		}
	default:
		sel = 0.33
	}
	return clamp01(sel * nonNull)
}

// ScanSelectivity estimates the combined selectivity of several filters on
// one table under the independence assumption.
func (s *DBStats) ScanSelectivity(filters []query.Filter) float64 {
	sel := 1.0
	for _, f := range filters {
		sel *= s.FilterSelectivity(f)
	}
	return clamp01(sel)
}

// EstimateScanRows estimates the output rows of scanning table with filters.
func (s *DBStats) EstimateScanRows(table string, filters []query.Filter) float64 {
	tm := s.schema.Table(table)
	if tm == nil {
		return 1
	}
	rows := float64(tm.RowCount) * s.ScanSelectivity(filters)
	if rows < 1 {
		rows = 1
	}
	return rows
}

// JoinSelectivity estimates the selectivity of an equi-join between two
// columns using the standard 1/max(distinct) formula.
func (s *DBStats) JoinSelectivity(j query.Join) float64 {
	l := s.Column(j.Left.Table, j.Left.Column)
	r := s.Column(j.Right.Table, j.Right.Column)
	dl, dr := 1, 1
	if l != nil && l.DistinctCount > 0 {
		dl = l.DistinctCount
	}
	if r != nil && r.DistinctCount > 0 {
		dr = r.DistinctCount
	}
	d := dl
	if dr > d {
		d = dr
	}
	return 1 / float64(d)
}

// EstimateGroupCount estimates the number of groups a GROUP BY over the
// given columns produces from `inputRows` rows, capped by the product of
// distinct counts.
func (s *DBStats) EstimateGroupCount(groupBy []query.ColumnRef, inputRows float64) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	distinct := 1.0
	for _, g := range groupBy {
		cs := s.Column(g.Table, g.Column)
		if cs != nil && cs.DistinctCount > 0 {
			distinct *= float64(cs.DistinctCount)
		}
	}
	if distinct > inputRows {
		distinct = inputRows
	}
	if distinct < 1 {
		distinct = 1
	}
	return distinct
}

// Schema returns the schema these statistics describe.
func (s *DBStats) Schema() *schema.Schema { return s.schema }

func clamp01(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
