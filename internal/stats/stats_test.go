package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// singleColumnDB builds a one-table database with the given int values.
func singleColumnDB(vals []int64) *storage.Database {
	meta := &schema.Table{
		Name: "t",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "v", Type: schema.TypeInt},
		},
		RowCount: len(vals),
	}
	meta.ComputePages()
	tab := storage.NewTable(meta)
	for i, v := range vals {
		tab.Cols[0].Ints = append(tab.Cols[0].Ints, int64(i))
		tab.Cols[1].Ints = append(tab.Cols[1].Ints, v)
	}
	meta.Columns[0].DistinctCount = len(vals)
	set := map[int64]bool{}
	for _, v := range vals {
		set[v] = true
	}
	meta.Columns[1].DistinctCount = len(set)
	s := &schema.Schema{Name: "one", Tables: []*schema.Table{meta}}
	db := storage.NewDatabase(s)
	db.AddTable(tab)
	return db
}

func trueSelectivity(vals []int64, op query.CmpOp, x float64) float64 {
	count := 0
	for _, v := range vals {
		fv := float64(v)
		ok := false
		switch op {
		case query.OpEq:
			ok = fv == x
		case query.OpNeq:
			ok = fv != x
		case query.OpLt:
			ok = fv < x
		case query.OpLe:
			ok = fv <= x
		case query.OpGt:
			ok = fv > x
		case query.OpGe:
			ok = fv >= x
		}
		if ok {
			count++
		}
	}
	return float64(count) / float64(len(vals))
}

func TestFilterSelectivityCloseToTruthUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	db := singleColumnDB(vals)
	st := Collect(db, DefaultBuckets, DefaultMCVs)
	for _, c := range []struct {
		op query.CmpOp
		x  float64
	}{
		{query.OpLe, 250}, {query.OpLt, 500}, {query.OpGt, 750}, {query.OpGe, 100},
		{query.OpEq, 42}, {query.OpNeq, 42},
	} {
		f := query.Filter{Col: query.ColumnRef{Table: "t", Column: "v"}, Op: c.op, Value: c.x}
		got := st.FilterSelectivity(f)
		want := trueSelectivity(vals, c.op, c.x)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("selectivity(%v %v): got %v, want %v", c.op, c.x, got, want)
		}
	}
}

func TestMCVsCatchHeavyHitters(t *testing.T) {
	// 60% of rows share one value; the MCV list must capture it exactly.
	vals := make([]int64, 1000)
	rng := rand.New(rand.NewSource(2))
	for i := range vals {
		if i < 600 {
			vals[i] = 7
		} else {
			vals[i] = int64(100 + rng.Intn(900))
		}
	}
	db := singleColumnDB(vals)
	st := Collect(db, DefaultBuckets, DefaultMCVs)
	f := query.Filter{Col: query.ColumnRef{Table: "t", Column: "v"}, Op: query.OpEq, Value: 7}
	got := st.FilterSelectivity(f)
	if math.Abs(got-0.6) > 0.01 {
		t.Fatalf("MCV equality selectivity = %v, want 0.6", got)
	}
}

func TestSelectivityBoundsProperty(t *testing.T) {
	f := func(raw []int16, x int16, opRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		db := singleColumnDB(vals)
		st := Collect(db, 8, 4)
		op := query.CmpOp(int(opRaw) % query.NumCmpOps)
		sel := st.FilterSelectivity(query.Filter{
			Col: query.ColumnRef{Table: "t", Column: "v"}, Op: op, Value: float64(x),
		})
		return sel >= 0 && sel <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramLEMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	sort.Float64s(vals)
	h := buildEquiDepth(vals, 16)
	prev := -1.0
	for x := -300.0; x <= 300; x += 10 {
		sel := h.SelectivityLE(x)
		if sel < prev-1e-9 {
			t.Fatalf("SelectivityLE not monotone at %v: %v < %v", x, sel, prev)
		}
		prev = sel
	}
	if got := h.SelectivityLE(math.Inf(1)); math.Abs(got-1) > 1e-9 {
		t.Fatalf("SelectivityLE(inf) = %v", got)
	}
	if got := h.SelectivityLE(math.Inf(-1)); got != 0 {
		t.Fatalf("SelectivityLE(-inf) = %v", got)
	}
}

func TestNullsExcludedFromComparisons(t *testing.T) {
	meta := &schema.Table{
		Name: "n",
		Columns: []schema.Column{
			{Name: "v", Type: schema.TypeInt, NullFrac: 0.5},
		},
		RowCount: 1000,
	}
	meta.ComputePages()
	tab := storage.NewTable(meta)
	tab.Cols[0].Nulls = make([]bool, 1000)
	for i := 0; i < 1000; i++ {
		tab.Cols[0].Ints = append(tab.Cols[0].Ints, int64(i%10))
		if i%2 == 0 {
			tab.Cols[0].Nulls[i] = true
		}
	}
	meta.Columns[0].DistinctCount = 10
	s := &schema.Schema{Name: "nulls", Tables: []*schema.Table{meta}}
	db := storage.NewDatabase(s)
	db.AddTable(tab)
	st := Collect(db, DefaultBuckets, DefaultMCVs)
	// v >= 0 matches every non-null row: selectivity should be ~0.5, not 1.
	sel := st.FilterSelectivity(query.Filter{
		Col: query.ColumnRef{Table: "n", Column: "v"}, Op: query.OpGe, Value: 0,
	})
	if math.Abs(sel-0.5) > 0.05 {
		t.Fatalf("selectivity with 50%% nulls = %v, want about 0.5", sel)
	}
}

func TestJoinSelectivity(t *testing.T) {
	db, err := datagen.IMDBLike(0.05)
	if err != nil {
		t.Fatal(err)
	}
	st := Collect(db, DefaultBuckets, DefaultMCVs)
	j := query.Join{
		Left:  query.ColumnRef{Table: "movie_companies", Column: "movie_id"},
		Right: query.ColumnRef{Table: "title", Column: "id"},
	}
	sel := st.JoinSelectivity(j)
	titleRows := float64(db.Schema.Table("title").RowCount)
	want := 1 / titleRows // title.id is the PK with rowCount distinct values
	if math.Abs(sel-want)/want > 1e-9 {
		t.Fatalf("join selectivity = %v, want %v", sel, want)
	}
}

func TestEstimateScanRowsFloorsAtOne(t *testing.T) {
	vals := make([]int64, 100)
	db := singleColumnDB(vals) // all zeros
	st := Collect(db, DefaultBuckets, DefaultMCVs)
	rows := st.EstimateScanRows("t", []query.Filter{
		{Col: query.ColumnRef{Table: "t", Column: "v"}, Op: query.OpEq, Value: 999},
	})
	if rows < 1 {
		t.Fatalf("EstimateScanRows = %v, want >= 1", rows)
	}
}

func TestEstimateGroupCount(t *testing.T) {
	db, _ := datagen.IMDBLike(0.05)
	st := Collect(db, DefaultBuckets, DefaultMCVs)
	g := []query.ColumnRef{{Table: "title", Column: "kind_id"}}
	n := st.EstimateGroupCount(g, 10000)
	kinds := st.Column("title", "kind_id").DistinctCount
	if n != float64(kinds) {
		t.Fatalf("EstimateGroupCount = %v, want %d", n, kinds)
	}
	// Group count never exceeds input rows.
	if got := st.EstimateGroupCount(g, 2); got > 2 {
		t.Fatalf("group count %v exceeds input rows", got)
	}
	if got := st.EstimateGroupCount(nil, 100); got != 1 {
		t.Fatalf("empty group by count = %v, want 1", got)
	}
}

func TestUnknownColumnFallsBack(t *testing.T) {
	db := singleColumnDB([]int64{1, 2, 3})
	st := Collect(db, DefaultBuckets, DefaultMCVs)
	sel := st.FilterSelectivity(query.Filter{
		Col: query.ColumnRef{Table: "ghost", Column: "x"}, Op: query.OpEq, Value: 1,
	})
	if sel <= 0 || sel > 1 {
		t.Fatalf("fallback selectivity = %v", sel)
	}
}

func TestCollectHandlesWholeDatabase(t *testing.T) {
	db, err := datagen.Generate("statsdb", 9, datagen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := Collect(db, DefaultBuckets, DefaultMCVs)
	for _, tm := range db.Schema.Tables {
		for _, cm := range tm.Columns {
			cs := st.Column(tm.Name, cm.Name)
			if cs == nil {
				t.Fatalf("missing stats for %s.%s", tm.Name, cm.Name)
			}
			if cs.RowCount != tm.RowCount {
				t.Fatalf("%s.%s RowCount = %d, want %d", tm.Name, cm.Name, cs.RowCount, tm.RowCount)
			}
			if cs.DistinctCount > tm.RowCount {
				t.Fatalf("%s.%s distinct %d > rows %d", tm.Name, cm.Name, cs.DistinctCount, tm.RowCount)
			}
		}
	}
}
