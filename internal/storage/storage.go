// Package storage implements the in-memory columnar storage layer that the
// execution engine runs over.
//
// Tables hold typed column vectors; secondary indexes are sorted row-id
// permutations that stand in for B-trees (same asymptotics, same access
// pattern counters). Page accounting mirrors a heap-file layout so that the
// hardware simulator can charge page reads for scans.
//
// The storage layer substitutes for PostgreSQL's heap and B-tree storage in
// the paper's prototype: the learned models only observe plan features and
// work counters, so an in-memory engine that produces exact cardinalities
// and realistic page/tuple counts exercises the identical code path.
package storage

import (
	"fmt"
	"math"
	"sort"

	"github.com/zeroshot-db/zeroshot/internal/schema"
)

// ColumnData holds the values of one column for all rows of a table.
// Integer and categorical columns store int64 codes; float columns store
// float64. Nulls records NULL positions.
type ColumnData struct {
	Type   schema.DataType
	Ints   []int64
	Floats []float64
	Nulls  []bool
}

// Len returns the number of rows stored.
func (c *ColumnData) Len() int {
	if c.Type == schema.TypeFloat {
		return len(c.Floats)
	}
	return len(c.Ints)
}

// IsNull reports whether the value at row is NULL.
func (c *ColumnData) IsNull(row int) bool {
	return c.Nulls != nil && c.Nulls[row]
}

// AsFloat returns the value at row as a float64 for uniform comparisons.
// Callers must check IsNull first; NULL positions return 0.
func (c *ColumnData) AsFloat(row int) float64 {
	if c.Type == schema.TypeFloat {
		return c.Floats[row]
	}
	return float64(c.Ints[row])
}

// Int returns the int64 value at row (valid for int and categorical columns).
func (c *ColumnData) Int(row int) int64 { return c.Ints[row] }

// Table is the physical storage of one table: column vectors plus the
// logical description.
type Table struct {
	Meta *schema.Table
	Cols []*ColumnData
}

// NewTable allocates empty column vectors matching the table definition.
func NewTable(meta *schema.Table) *Table {
	t := &Table{Meta: meta, Cols: make([]*ColumnData, len(meta.Columns))}
	for i, c := range meta.Columns {
		t.Cols[i] = &ColumnData{Type: c.Type}
	}
	return t
}

// Rows returns the number of rows stored.
func (t *Table) Rows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Col returns the column data for the named column, or nil.
func (t *Table) Col(name string) *ColumnData {
	idx := t.Meta.ColumnIndex(name)
	if idx < 0 {
		return nil
	}
	return t.Cols[idx]
}

// Index is a secondary index over one column: row ids ordered by value. It
// models a B-tree — EstimateHeight reports the logical tree height that a
// real B-tree of this size would have, which the hardware simulator charges
// per lookup.
type Index struct {
	Table  string
	Column string
	// rowIDs is the permutation of row ids sorted by column value
	// (NULLs last).
	rowIDs []int32
	col    *ColumnData
}

// BuildIndex constructs a secondary index over the named column.
func BuildIndex(t *Table, column string) (*Index, error) {
	col := t.Col(column)
	if col == nil {
		return nil, fmt.Errorf("storage: index on unknown column %s.%s", t.Meta.Name, column)
	}
	n := t.Rows()
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ra, rb := int(ids[a]), int(ids[b])
		na, nb := col.IsNull(ra), col.IsNull(rb)
		if na != nb {
			return !na // non-null first
		}
		if na {
			return ra < rb
		}
		va, vb := col.AsFloat(ra), col.AsFloat(rb)
		if va != vb {
			return va < vb
		}
		return ra < rb
	})
	return &Index{Table: t.Meta.Name, Column: column, rowIDs: ids, col: col}, nil
}

// Len returns the number of indexed entries.
func (ix *Index) Len() int { return len(ix.rowIDs) }

// EstimateHeight returns the height a B-tree with this many entries would
// have with a typical fanout of 256 (minimum 1).
func (ix *Index) EstimateHeight() int {
	n := len(ix.rowIDs)
	if n <= 1 {
		return 1
	}
	h := int(math.Ceil(math.Log(float64(n)) / math.Log(256)))
	if h < 1 {
		h = 1
	}
	return h
}

// nonNullCount returns the number of leading non-null entries.
func (ix *Index) nonNullCount() int {
	// NULLs sort last; binary search for the first null.
	return sort.Search(len(ix.rowIDs), func(i int) bool {
		return ix.col.IsNull(int(ix.rowIDs[i]))
	})
}

// Range returns the row ids whose column value v satisfies lo <= v <= hi.
// Either bound may be infinite (math.Inf). NULL rows never match.
// The returned slice aliases internal storage and must not be modified.
func (ix *Index) Range(lo, hi float64) []int32 {
	n := ix.nonNullCount()
	start := sort.Search(n, func(i int) bool {
		return ix.col.AsFloat(int(ix.rowIDs[i])) >= lo
	})
	end := sort.Search(n, func(i int) bool {
		return ix.col.AsFloat(int(ix.rowIDs[i])) > hi
	})
	if start >= end {
		return nil
	}
	return ix.rowIDs[start:end]
}

// Lookup returns the row ids whose column value equals v.
func (ix *Index) Lookup(v float64) []int32 { return ix.Range(v, v) }

// Database bundles a schema with its stored tables and built indexes.
type Database struct {
	Schema  *schema.Schema
	tables  map[string]*Table
	indexes map[string]*Index // key: table.column
}

// NewDatabase creates an empty database for the schema.
func NewDatabase(s *schema.Schema) *Database {
	return &Database{
		Schema:  s,
		tables:  make(map[string]*Table, len(s.Tables)),
		indexes: make(map[string]*Index),
	}
}

// AddTable registers stored data for a table. It panics if the table is not
// part of the schema, which indicates a programming error in data loading.
func (db *Database) AddTable(t *Table) {
	if db.Schema.Table(t.Meta.Name) == nil {
		panic(fmt.Sprintf("storage: table %s not in schema %s", t.Meta.Name, db.Schema.Name))
	}
	db.tables[t.Meta.Name] = t
}

// Table returns the stored table with the given name, or nil.
func (db *Database) Table(name string) *Table { return db.tables[name] }

func indexKey(table, column string) string { return table + "." + column }

// EnsureIndex builds (or returns the existing) index on table.column.
// Because indexes are cheap to build in memory, hypothetical ("what-if")
// indexes are realized on demand through this same entry point.
func (db *Database) EnsureIndex(table, column string) (*Index, error) {
	key := indexKey(table, column)
	if ix, ok := db.indexes[key]; ok {
		return ix, nil
	}
	t := db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("storage: EnsureIndex on unknown table %s", table)
	}
	ix, err := BuildIndex(t, column)
	if err != nil {
		return nil, err
	}
	db.indexes[key] = ix
	return ix, nil
}

// Index returns the index on table.column if it has been built, or nil.
func (db *Database) Index(table, column string) *Index {
	return db.indexes[indexKey(table, column)]
}

// DropIndex removes the index on table.column if present.
func (db *Database) DropIndex(table, column string) {
	delete(db.indexes, indexKey(table, column))
}

// IndexedColumns returns the sorted list of "table.column" keys that
// currently have indexes.
func (db *Database) IndexedColumns() []string {
	keys := make([]string, 0, len(db.indexes))
	for k := range db.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
