package storage

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/zeroshot-db/zeroshot/internal/schema"
)

func testTable(t *testing.T, rows int) (*Table, *schema.Table) {
	t.Helper()
	meta := &schema.Table{
		Name: "t",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt, PrimaryKey: true},
			{Name: "v", Type: schema.TypeInt},
			{Name: "f", Type: schema.TypeFloat},
		},
		RowCount: rows,
	}
	meta.ComputePages()
	tab := NewTable(meta)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		tab.Cols[0].Ints = append(tab.Cols[0].Ints, int64(i))
		tab.Cols[1].Ints = append(tab.Cols[1].Ints, int64(rng.Intn(50)))
		tab.Cols[2].Floats = append(tab.Cols[2].Floats, rng.Float64()*100)
	}
	return tab, meta
}

func TestTableBasics(t *testing.T) {
	tab, _ := testTable(t, 100)
	if got := tab.Rows(); got != 100 {
		t.Fatalf("Rows() = %d, want 100", got)
	}
	if tab.Col("v") == nil {
		t.Fatal("Col(v) = nil")
	}
	if tab.Col("missing") != nil {
		t.Fatal("Col(missing) != nil")
	}
}

func TestIndexRangeMatchesLinearScan(t *testing.T) {
	tab, _ := testTable(t, 500)
	ix, err := BuildIndex(tab, "v")
	if err != nil {
		t.Fatal(err)
	}
	col := tab.Col("v")
	for _, bounds := range [][2]float64{{10, 20}, {0, 0}, {49, 49}, {-5, 3}, {45, 100}, {math.Inf(-1), math.Inf(1)}} {
		lo, hi := bounds[0], bounds[1]
		got := ix.Range(lo, hi)
		var want []int32
		for r := 0; r < tab.Rows(); r++ {
			v := col.AsFloat(r)
			if v >= lo && v <= hi {
				want = append(want, int32(r))
			}
		}
		gotSorted := append([]int32(nil), got...)
		sort.Slice(gotSorted, func(a, b int) bool { return gotSorted[a] < gotSorted[b] })
		if len(gotSorted) != len(want) {
			t.Fatalf("Range(%v,%v) returned %d rows, want %d", lo, hi, len(gotSorted), len(want))
		}
		for i := range want {
			if gotSorted[i] != want[i] {
				t.Fatalf("Range(%v,%v) row mismatch at %d: got %d want %d", lo, hi, i, gotSorted[i], want[i])
			}
		}
	}
}

func TestIndexRangeReturnsValuesInOrder(t *testing.T) {
	tab, _ := testTable(t, 300)
	ix, err := BuildIndex(tab, "f")
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Range(10, 90)
	col := tab.Col("f")
	for i := 1; i < len(got); i++ {
		if col.AsFloat(int(got[i-1])) > col.AsFloat(int(got[i])) {
			t.Fatalf("index range not value-ordered at position %d", i)
		}
	}
}

func TestIndexSkipsNulls(t *testing.T) {
	meta := &schema.Table{
		Name:     "n",
		Columns:  []schema.Column{{Name: "v", Type: schema.TypeInt}},
		RowCount: 4,
	}
	meta.ComputePages()
	tab := NewTable(meta)
	tab.Cols[0].Ints = []int64{5, 1, 9, 3}
	tab.Cols[0].Nulls = []bool{false, true, false, true}
	ix, err := BuildIndex(tab, "v")
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Range(math.Inf(-1), math.Inf(1))
	if len(got) != 2 {
		t.Fatalf("Range over all values returned %d rows, want 2 (nulls skipped)", len(got))
	}
	for _, r := range got {
		if tab.Cols[0].IsNull(int(r)) {
			t.Fatalf("index returned NULL row %d", r)
		}
	}
}

func TestIndexLookupEquality(t *testing.T) {
	tab, _ := testTable(t, 400)
	ix, err := BuildIndex(tab, "v")
	if err != nil {
		t.Fatal(err)
	}
	col := tab.Col("v")
	got := ix.Lookup(25)
	for _, r := range got {
		if col.Int(int(r)) != 25 {
			t.Fatalf("Lookup(25) returned row with value %d", col.Int(int(r)))
		}
	}
	count := 0
	for r := 0; r < tab.Rows(); r++ {
		if col.Int(r) == 25 {
			count++
		}
	}
	if len(got) != count {
		t.Fatalf("Lookup(25) = %d rows, want %d", len(got), count)
	}
}

func TestIndexOnUnknownColumn(t *testing.T) {
	tab, _ := testTable(t, 10)
	if _, err := BuildIndex(tab, "missing"); err == nil {
		t.Fatal("BuildIndex on unknown column succeeded")
	}
}

func TestEstimateHeightGrowsWithSize(t *testing.T) {
	small, _ := testTable(t, 10)
	ixSmall, _ := BuildIndex(small, "v")
	big, _ := testTable(t, 100000)
	ixBig, _ := BuildIndex(big, "v")
	if ixSmall.EstimateHeight() < 1 {
		t.Fatal("height < 1")
	}
	if ixBig.EstimateHeight() < ixSmall.EstimateHeight() {
		t.Fatalf("height not monotone: big=%d small=%d", ixBig.EstimateHeight(), ixSmall.EstimateHeight())
	}
}

func TestDatabaseIndexLifecycle(t *testing.T) {
	tab, meta := testTable(t, 50)
	s := &schema.Schema{Name: "db", Tables: []*schema.Table{meta}}
	db := NewDatabase(s)
	db.AddTable(tab)
	if db.Index("t", "v") != nil {
		t.Fatal("index exists before EnsureIndex")
	}
	ix1, err := db.EnsureIndex("t", "v")
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := db.EnsureIndex("t", "v")
	if err != nil {
		t.Fatal(err)
	}
	if ix1 != ix2 {
		t.Fatal("EnsureIndex rebuilt an existing index")
	}
	if got := db.IndexedColumns(); len(got) != 1 || got[0] != "t.v" {
		t.Fatalf("IndexedColumns() = %v", got)
	}
	db.DropIndex("t", "v")
	if db.Index("t", "v") != nil {
		t.Fatal("index survives DropIndex")
	}
	if _, err := db.EnsureIndex("missing", "v"); err == nil {
		t.Fatal("EnsureIndex on unknown table succeeded")
	}
}

func TestAddTablePanicsOnForeignTable(t *testing.T) {
	s := &schema.Schema{Name: "db", Tables: nil}
	db := NewDatabase(s)
	defer func() {
		if recover() == nil {
			t.Fatal("AddTable did not panic for table outside schema")
		}
	}()
	tab, _ := testTable(t, 1)
	db.AddTable(tab)
}

// Property: for random values and bounds, Range never returns a value
// outside [lo, hi].
func TestIndexRangeBoundsProperty(t *testing.T) {
	f := func(vals []int16, lo8, hi8 int8) bool {
		if len(vals) == 0 {
			return true
		}
		meta := &schema.Table{
			Name:     "p",
			Columns:  []schema.Column{{Name: "v", Type: schema.TypeInt}},
			RowCount: len(vals),
		}
		meta.ComputePages()
		tab := NewTable(meta)
		for _, v := range vals {
			tab.Cols[0].Ints = append(tab.Cols[0].Ints, int64(v))
		}
		ix, err := BuildIndex(tab, "v")
		if err != nil {
			return false
		}
		lo, hi := float64(lo8), float64(hi8)
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, r := range ix.Range(lo, hi) {
			v := tab.Cols[0].AsFloat(int(r))
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
