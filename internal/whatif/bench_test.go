package whatif

import (
	"context"
	"sync"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

var (
	swOnce sync.Once
	swDB   *storage.Database
	swEst  costmodel.Estimator
	swQs   []*query.Query
	swErr  error
)

// benchSetup trains a small real zero-shot model (estimated
// cardinalities, the serving configuration) on its own database — the
// fused-vs-fanout comparison is only meaningful against the real graph
// model's forward pass.
func benchSetup(b *testing.B) (*storage.Database, costmodel.Estimator, []*query.Query) {
	b.Helper()
	swOnce.Do(func() {
		swDB, swErr = datagen.IMDBLike(0.05)
		if swErr != nil {
			return
		}
		recs, err := collect.Run(swDB, collect.Options{Queries: 48, Seed: 41})
		if err != nil {
			swErr = err
			return
		}
		est, err := costmodel.New(costmodel.NameZeroShot,
			costmodel.Options{Hidden: 12, Epochs: 2, Card: encoding.CardEstimated})
		if err != nil {
			swErr = err
			return
		}
		if _, err := est.Fit(context.Background(), costmodel.FromRecords(swDB, recs)); err != nil {
			swErr = err
			return
		}
		swEst = est
		swQs, swErr = query.Synthetic(swDB, 32, 99)
	})
	if swErr != nil {
		b.Fatal(swErr)
	}
	return swDB, swEst, swQs
}

// fanoutEst defeats batch fusion: PredictBatch degrades to a per-item
// Predict loop (one tape-free forward pass per plan instead of one per
// batch). The interface embedding deliberately hides FusesBatches.
type fanoutEst struct {
	costmodel.Estimator
}

func (f fanoutEst) PredictBatch(ctx context.Context, ins []costmodel.PlanInput) ([]float64, error) {
	out := make([]float64, len(ins))
	for i, in := range ins {
		v, err := f.Estimator.Predict(ctx, in)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// BenchmarkWhatIfSweep prices one advise-sized sweep — 32 statements ×
// (7 candidates + baseline) = 256 plans — through the real zero-shot
// model, fused (one batched forward pass) versus fanned out (per-item
// passes). Catalogs are pre-warmed so both variants measure pure
// pricing, not parsing or planning.
func BenchmarkWhatIfSweep(b *testing.B) {
	db, est, qs := benchSetup(b)
	st := stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	cands, err := Enumerate(db.Schema, qs, nil, 7)
	if err != nil {
		b.Fatal(err)
	}
	variants := make([]Variant, len(cands))
	for i, c := range cands {
		variants[i] = Variant{Name: c.Index, Indexes: []string{c.Index}}
	}
	stmts := Statements(qs)
	items := (len(variants) + 1) * len(stmts)

	run := func(b *testing.B, est costmodel.Estimator) {
		cat := NewCatalog(db, st, optimizer.DefaultCostParams(), 4096)
		if _, err := cat.Sweep(context.Background(), est, stmts, variants); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cat.Sweep(context.Background(), est, stmts, variants); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*items), "ns/item")
	}
	b.Run("fused", func(b *testing.B) { run(b, est) })
	b.Run("fanout", func(b *testing.B) { run(b, fanoutEst{est}) })
}
