package whatif

import (
	"fmt"
	"sort"
	"strings"

	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/schema"
)

// DefaultMaxCandidates caps enumeration when the request does not: a
// sweep prices candidates × workload plans, so an unbounded candidate
// set on a wide schema would turn one advise call into an unbounded
// batch.
const DefaultMaxCandidates = 16

// Candidate sources.
const (
	SourceUser   = "user"
	SourceFK     = "fk"
	SourceFilter = "filter"
)

// Enumerate proposes index candidates for a workload on a schema.
//
// With explicit user candidates, each entry must be a well-formed
// "table.column" naming an existing non-primary-key column; any
// violation fails the whole call with ErrBadCandidate (an advise request
// with a typo should error loudly, not silently drop the candidate).
// Duplicates collapse to their first occurrence and order is preserved.
//
// Without user candidates, the enumerator proposes foreign-key join
// columns (the referencing side — what an index accelerates in a join)
// and the workload's filter columns, scored by how often the workload
// touches each column in a join or predicate. Primary-key columns are
// skipped (they are the uninteresting always-indexed case), zero-use
// columns are kept only when the workload is empty, and the result is
// ordered by score descending (ties by name) so the cap keeps the most
// relevant candidates.
func Enumerate(sch *schema.Schema, queries []*query.Query, user []string, max int) ([]Candidate, error) {
	if max <= 0 {
		max = DefaultMaxCandidates
	}
	if len(user) > 0 {
		return validateUser(sch, user, max)
	}
	return propose(sch, queries, max), nil
}

// validateUser strictly checks an explicit candidate list.
func validateUser(sch *schema.Schema, user []string, max int) ([]Candidate, error) {
	seen := map[string]bool{}
	out := make([]Candidate, 0, len(user))
	for _, c := range user {
		table, column, ok := strings.Cut(c, ".")
		if !ok || table == "" || column == "" || strings.Contains(column, ".") {
			return nil, fmt.Errorf("%w: %q is not of the form table.column", ErrBadCandidate, c)
		}
		t := sch.Table(table)
		if t == nil {
			return nil, fmt.Errorf("%w: unknown table %q in %q", ErrBadCandidate, table, c)
		}
		col := t.Column(column)
		if col == nil {
			return nil, fmt.Errorf("%w: unknown column %q in %q", ErrBadCandidate, column, c)
		}
		if col.PrimaryKey {
			return nil, fmt.Errorf("%w: %q is a primary key (already indexed)", ErrBadCandidate, c)
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, Candidate{Index: c, Source: SourceUser})
		if len(out) >= max {
			break
		}
	}
	return out, nil
}

// propose enumerates FK join columns and workload filter columns, scored
// by workload usage.
func propose(sch *schema.Schema, queries []*query.Query, max int) []Candidate {
	// usage counts how often the workload joins or filters each column.
	usage := map[string]int{}
	filtered := map[string]bool{}
	for _, q := range queries {
		for _, j := range q.Joins {
			usage[j.Left.String()]++
			usage[j.Right.String()]++
		}
		for _, f := range q.Filters {
			usage[f.Col.String()]++
			filtered[f.Col.String()] = true
		}
	}

	indexable := func(table, column string) bool {
		t := sch.Table(table)
		if t == nil {
			return false
		}
		col := t.Column(column)
		return col != nil && !col.PrimaryKey
	}

	cands := map[string]Candidate{}
	for _, fk := range sch.ForeignKeys {
		key := fk.FromTable + "." + fk.FromColumn
		if indexable(fk.FromTable, fk.FromColumn) {
			cands[key] = Candidate{Index: key, Source: SourceFK}
		}
	}
	for key := range filtered {
		if _, dup := cands[key]; dup {
			continue
		}
		table, column, _ := strings.Cut(key, ".")
		if indexable(table, column) {
			cands[key] = Candidate{Index: key, Source: SourceFilter}
		}
	}

	out := make([]Candidate, 0, len(cands))
	for key, c := range cands {
		// With a workload in hand, a column it never touches cannot help
		// it; without one, fall back to the schema's FK columns.
		if len(queries) > 0 && usage[key] == 0 {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		ua, ub := usage[out[a].Index], usage[out[b].Index]
		if ua != ub {
			return ua > ub
		}
		return out[a].Index < out[b].Index
	})
	if len(out) > max {
		out = out[:max]
	}
	return out
}
