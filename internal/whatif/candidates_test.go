package whatif

import (
	"errors"
	"strings"
	"testing"
)

func TestEnumerateUserCandidates(t *testing.T) {
	db, _, _ := fixture(t)

	// Valid explicit candidates: order preserved, duplicates collapse to
	// their first occurrence.
	cands, err := Enumerate(db.Schema, nil, []string{
		"movie_companies.movie_id",
		"title.production_year",
		"movie_companies.movie_id", // dup
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2 (dup collapsed): %+v", len(cands), cands)
	}
	if cands[0].Index != "movie_companies.movie_id" || cands[1].Index != "title.production_year" {
		t.Fatalf("order not preserved: %+v", cands)
	}
	for _, c := range cands {
		if c.Source != SourceUser {
			t.Fatalf("candidate %q source = %q, want %q", c.Index, c.Source, SourceUser)
		}
	}

	// The cap truncates.
	capped, err := Enumerate(db.Schema, nil, []string{
		"movie_companies.movie_id", "title.production_year", "cast_info.movie_id",
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 {
		t.Fatalf("cap 2 kept %d candidates: %+v", len(capped), capped)
	}
}

func TestEnumerateUserRejections(t *testing.T) {
	db, _, _ := fixture(t)
	for _, bad := range []string{
		"no_dot",              // malformed: no separator
		"title.",              // malformed: empty column
		".movie_id",           // malformed: empty table
		"title.a.b",           // malformed: nested dot
		"nosuch.movie_id",     // unknown table
		"title.nosuch_column", // unknown column
		"title.id",            // primary key (already indexed)
	} {
		_, err := Enumerate(db.Schema, nil, []string{bad}, 0)
		if !errors.Is(err, ErrBadCandidate) {
			t.Errorf("candidate %q: err = %v, want ErrBadCandidate", bad, err)
		}
	}

	// One bad entry fails the whole list, even with valid entries first.
	_, err := Enumerate(db.Schema, nil, []string{"movie_companies.movie_id", "typo"}, 0)
	if !errors.Is(err, ErrBadCandidate) {
		t.Fatalf("mixed list err = %v, want ErrBadCandidate", err)
	}
}

func TestEnumerateProposes(t *testing.T) {
	db, _, qs := fixture(t)
	cands, err := Enumerate(db.Schema, qs, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("enumeration proposed nothing for a synthetic workload")
	}
	if len(cands) > DefaultMaxCandidates {
		t.Fatalf("got %d candidates, cap is %d", len(cands), DefaultMaxCandidates)
	}

	// Recompute the workload's column usage to check relevance and order.
	usage := map[string]int{}
	for _, q := range qs {
		for _, j := range q.Joins {
			usage[j.Left.String()]++
			usage[j.Right.String()]++
		}
		for _, f := range q.Filters {
			usage[f.Col.String()]++
		}
	}
	seen := map[string]bool{}
	for i, c := range cands {
		if seen[c.Index] {
			t.Fatalf("duplicate candidate %q", c.Index)
		}
		seen[c.Index] = true
		if c.Source != SourceFK && c.Source != SourceFilter {
			t.Fatalf("candidate %q has source %q", c.Index, c.Source)
		}
		table, column, ok := strings.Cut(c.Index, ".")
		if !ok {
			t.Fatalf("candidate %q is not table.column", c.Index)
		}
		col := db.Schema.Table(table).Column(column)
		if col == nil || col.PrimaryKey {
			t.Fatalf("candidate %q is not an indexable column", c.Index)
		}
		if usage[c.Index] == 0 {
			t.Fatalf("candidate %q is never joined or filtered by the workload", c.Index)
		}
		if i > 0 && usage[cands[i-1].Index] < usage[c.Index] {
			t.Fatalf("candidates not ordered by usage: %q (%d) before %q (%d)",
				cands[i-1].Index, usage[cands[i-1].Index], c.Index, usage[c.Index])
		}
	}

	// A cap keeps the top-scored prefix.
	capped, err := Enumerate(db.Schema, qs, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 2 || capped[0] != cands[0] || capped[1] != cands[1] {
		t.Fatalf("cap 2 = %+v, want prefix of %+v", capped, cands[:2])
	}
}

func TestEnumerateEmptyWorkloadFallsBackToFKs(t *testing.T) {
	db, _, _ := fixture(t)
	cands, err := Enumerate(db.Schema, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates proposed from schema foreign keys")
	}
	for _, c := range cands {
		if c.Source != SourceFK {
			t.Fatalf("with no workload, candidate %q should be FK-sourced, got %q", c.Index, c.Source)
		}
	}
}
