package whatif

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// Variant is one hypothetical configuration of a database: a set of
// hypothetical indexes and, optionally, overridden planner cost
// parameters (e.g. a what-if over faster random I/O). The zero value is
// the baseline: the database exactly as attached.
type Variant struct {
	// Name identifies the variant in results; empty names render as
	// "baseline" for the zero variant or the joined index list.
	Name string
	// Indexes lists hypothetical indexes as "table.column".
	Indexes []string
	// Params optionally overrides the planner's cost parameters; nil
	// keeps the catalog's defaults.
	Params *optimizer.CostParams
}

// displayName returns the variant's result name.
func (v Variant) displayName() string {
	if v.Name != "" {
		return v.Name
	}
	if len(v.Indexes) == 0 {
		return "baseline"
	}
	return strings.Join(v.Indexes, "+")
}

// signature canonicalizes the variant for plan-cache and optimizer-cache
// keys: sorted deduplicated indexes plus the cost-parameter override.
// Two variants with the same signature plan identically regardless of
// their names.
func (v Variant) signature() string {
	idx := append([]string(nil), v.Indexes...)
	sort.Strings(idx)
	idx = dedupSorted(idx)
	sig := strings.Join(idx, ",")
	if v.Params != nil {
		sig += fmt.Sprintf("|%+v", *v.Params)
	}
	return sig
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// indexSet converts the variant's index list to the planner's form.
func (v Variant) indexSet() optimizer.IndexSet {
	if len(v.Indexes) == 0 {
		return nil
	}
	set := make(optimizer.IndexSet, len(v.Indexes))
	for _, idx := range v.Indexes {
		set[idx] = true
	}
	return set
}

// maxVariantOptimizers bounds the per-catalog optimizer cache; beyond it
// the cache resets rather than grows (sweeps over adversarially many
// distinct variants stay O(1) in memory, merely re-deriving optimizers).
const maxVariantOptimizers = 256

// Catalog is a copy-on-write hypothetical view layer over one database:
// it shares the database's storage, schema and collected statistics
// (all immutable under planning) and overlays per-variant state — the
// hypothetical IndexSet and cost parameters — purely inside per-variant
// optimizer instances. Nothing a sweep does writes to the shared
// database: hypothetical indexes exist only as planner advice, never as
// storage.Database index structures (only execution materializes
// indexes, and sweeps never execute).
//
// The catalog memoizes two levels: per-variant optimizers (cheap to
// build, cached so repeated sweeps skip even that) and prepared plan
// inputs keyed by (variant signature, statement fingerprint) in a
// bounded LRU — a repeated sweep over a warm workload skips parse,
// optimize AND graph encoding (the cached PlanInput carries an
// EncodedPlan memo).
//
// All methods are safe for concurrent use.
type Catalog struct {
	db     *storage.Database
	st     *stats.DBStats
	params optimizer.CostParams
	cache  *costmodel.PlanCache

	mu   sync.Mutex
	opts map[string]*optimizer.Optimizer
}

// NewCatalog builds a hypothetical catalog over the database. st may be
// nil, in which case statistics are collected at default resolution;
// callers that already hold collected statistics (the serving pipeline)
// pass them so the catalog shares rather than recollects. cacheSize
// bounds the prepared-plan cache (<=0 selects the costmodel default).
func NewCatalog(db *storage.Database, st *stats.DBStats, params optimizer.CostParams, cacheSize int) *Catalog {
	if st == nil {
		st = stats.Collect(db, stats.DefaultBuckets, stats.DefaultMCVs)
	}
	if cacheSize <= 0 {
		cacheSize = costmodel.DefaultPlanCacheSize
	}
	return &Catalog{
		db:     db,
		st:     st,
		params: params,
		cache:  costmodel.NewPlanCache(cacheSize),
		opts:   map[string]*optimizer.Optimizer{},
	}
}

// CacheStats snapshots the prepared-plan cache.
func (c *Catalog) CacheStats() costmodel.PlanCacheStats { return c.cache.Stats() }

// optimizerFor returns the planner for a variant, building and caching
// it on first use. Every optimizer shares the catalog's schema and
// statistics pointers; the variant owns only its IndexSet and params.
func (c *Catalog) optimizerFor(v Variant, sig string) *optimizer.Optimizer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if opt, ok := c.opts[sig]; ok {
		return opt
	}
	if len(c.opts) >= maxVariantOptimizers {
		c.opts = map[string]*optimizer.Optimizer{}
	}
	params := c.params
	if v.Params != nil {
		params = *v.Params
	}
	opt := optimizer.New(c.db.Schema, c.st, v.indexSet(), params)
	c.opts[sig] = opt
	return opt
}

// prepare plans one statement under one variant, consulting the
// prepared-plan cache first. The cached PlanInput carries an EncodedPlan
// memo, so on a warm sweep the estimator also skips graph encoding.
func (c *Catalog) prepare(v Variant, sig string, stmt Statement) (costmodel.PlanInput, error) {
	key := sig + "\x00" + stmt.Fingerprint
	if in, ok := c.cache.Get(key); ok {
		return in, nil
	}
	p, err := c.optimizerFor(v, sig).Plan(stmt.Query)
	if err != nil {
		return costmodel.PlanInput{}, err
	}
	in := costmodel.PlanInput{
		DB:            c.db,
		Query:         stmt.Query,
		Plan:          p,
		OptimizerCost: optimizer.TotalCost(p),
		Enc:           costmodel.NewEncodedPlan(),
	}
	c.cache.Put(key, in)
	return in, nil
}
