package whatif

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/query"
	"github.com/zeroshot-db/zeroshot/internal/stats"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// fakeEst is a deterministic, instant Estimator: predictions are a pure
// function of the optimizer cost, so sweep results are exactly
// reproducible by any code that plans the same (variant, statement)
// pairs. Batch calls and sizes are recorded to assert fusion; poison
// injects per-input failures; block stalls PredictBatch until the
// context dies (for cancellation tests).
type fakeEst struct {
	poison     func(costmodel.PlanInput) error
	block      bool
	batchCalls atomic.Int64
	batchMax   atomic.Int64
}

func (f *fakeEst) Name() string { return "fake" }

func (f *fakeEst) Fit(ctx context.Context, samples []costmodel.Sample) (*costmodel.FitReport, error) {
	return &costmodel.FitReport{Samples: len(samples)}, nil
}

func (f *fakeEst) Predict(ctx context.Context, in costmodel.PlanInput) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if f.poison != nil {
		if err := f.poison(in); err != nil {
			return 0, err
		}
	}
	return 0.001 + in.OptimizerCost*1e-9, nil
}

func (f *fakeEst) PredictBatch(ctx context.Context, ins []costmodel.PlanInput) ([]float64, error) {
	f.batchCalls.Add(1)
	if n := int64(len(ins)); n > f.batchMax.Load() {
		f.batchMax.Store(n)
	}
	if f.block {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	out := make([]float64, len(ins))
	for i, in := range ins {
		v, err := f.Predict(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func (f *fakeEst) Save(w io.Writer) error { return nil }

var (
	fixOnce sync.Once
	fixDB   *storage.Database
	fixSt   *stats.DBStats
	fixQs   []*query.Query
	fixErr  error
)

// fixture builds (once) a small IMDB-like database, collected statistics
// and a synthetic workload. Queries are generated, never executed, so
// the database starts with zero materialized indexes — which the
// no-mutation tests rely on.
func fixture(t testing.TB) (*storage.Database, *stats.DBStats, []*query.Query) {
	t.Helper()
	fixOnce.Do(func() {
		fixDB, fixErr = datagen.IMDBLike(0.03)
		if fixErr != nil {
			return
		}
		fixSt = stats.Collect(fixDB, stats.DefaultBuckets, stats.DefaultMCVs)
		fixQs, fixErr = query.Synthetic(fixDB, 10, 21)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixDB, fixSt, fixQs
}
