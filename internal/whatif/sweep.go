package whatif

import (
	"context"
	"sort"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
)

// Sweep prices the workload under the baseline and every variant and
// returns the variants ranked by predicted workload runtime.
//
// The executor plans every (variant × statement) pair through the
// catalog (cache-first), then prices the ENTIRE cross product — baseline
// included — through one Estimator.PredictBatch call; with a fusing
// estimator the whole sweep is a single tape-free forward pass. Errors
// are structured per item: a statement that fails to plan or price under
// one variant carries its own error in that variant's QueryResult and
// the rest of the sweep still prices. The error return is reserved for
// request-level failures (empty workload, no variants, context
// cancellation — checked between planning steps and inside the
// estimator, so an abandoned sweep stops mid-flight and returns the
// context's error).
func (c *Catalog) Sweep(ctx context.Context, est costmodel.Estimator, stmts []Statement, variants []Variant) (*Report, error) {
	if len(stmts) == 0 {
		return nil, ErrEmptyWorkload
	}
	if len(variants) == 0 {
		return nil, ErrNoVariants
	}

	// The baseline is always variant 0; results[0] is pulled out of the
	// ranking afterwards.
	all := make([]Variant, 0, len(variants)+1)
	all = append(all, Variant{})
	all = append(all, variants...)

	results := make([]VariantResult, len(all))
	// Plan the cross product. ins collects the priceable pairs; pos maps
	// each to its (variant, statement) slot.
	var ins []costmodel.PlanInput
	type slot struct{ v, s int }
	var pos []slot
	for vi, v := range all {
		sig := v.signature()
		results[vi] = VariantResult{
			Name:    v.displayName(),
			Indexes: append([]string(nil), v.Indexes...),
			Queries: make([]QueryResult, len(stmts)),
		}
		for si, stmt := range stmts {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			qr := &results[vi].Queries[si]
			qr.SQL = stmt.SQL
			in, err := c.prepare(v, sig, stmt)
			if err != nil {
				qr.Error = err.Error()
				results[vi].Errors++
				continue
			}
			ins = append(ins, in)
			pos = append(pos, slot{vi, si})
		}
	}

	// One fused pass over the whole sweep. A batch-level abort (first
	// bad input wins) falls back to per-item predictions so each pair
	// carries exactly its own error — unless the batch died because the
	// caller's context did, in which case the sweep is over.
	preds, err := est.PredictBatch(ctx, ins)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		preds = make([]float64, len(ins))
		for j := range ins {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			v, perr := est.Predict(ctx, ins[j])
			if perr != nil {
				qr := &results[pos[j].v].Queries[pos[j].s]
				qr.Error = perr.Error()
				results[pos[j].v].Errors++
				preds[j] = -1
				continue
			}
			preds[j] = v
		}
	}
	for j, p := range preds {
		if p < 0 {
			continue
		}
		results[pos[j].v].Queries[pos[j].s].PredictedSec = p
	}

	// Totals, per-query baselines and workload speedups. Workload
	// speedups compare only statements priced under BOTH the baseline
	// and the variant, so a variant is never rewarded for failing to
	// price an expensive query.
	base := &results[0]
	for vi := range results {
		vr := &results[vi]
		var total, sharedBase, sharedVar float64
		for si := range vr.Queries {
			qr := &vr.Queries[si]
			bq := base.Queries[si]
			if qr.Error != "" {
				continue
			}
			total += qr.PredictedSec
			if bq.Error != "" {
				continue
			}
			qr.BaselineSec = bq.PredictedSec
			if qr.PredictedSec > 0 {
				qr.SpeedupX = bq.PredictedSec / qr.PredictedSec
			}
			sharedBase += bq.PredictedSec
			sharedVar += qr.PredictedSec
		}
		vr.TotalSec = total
		if sharedVar > 0 {
			vr.SpeedupX = sharedBase / sharedVar
		}
	}

	ranked := results[1:]
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].TotalSec != ranked[b].TotalSec {
			return ranked[a].TotalSec < ranked[b].TotalSec
		}
		return ranked[a].Name < ranked[b].Name
	})

	r := &Report{
		Baseline: results[0],
		Variants: ranked,
		Items:    len(ins),
	}
	if len(ranked) > 0 && ranked[0].TotalSec < results[0].TotalSec {
		r.Recommendation = ranked[0].Name
	}
	return r, nil
}
