package whatif

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/optimizer"
)

// sweepFixture builds a fresh catalog plus statements and candidate
// variants over the shared fixture database.
func sweepFixture(t testing.TB, nCands int) (*Catalog, []Statement, []Variant) {
	t.Helper()
	db, st, qs := fixture(t)
	c := NewCatalog(db, st, optimizer.DefaultCostParams(), 0)
	cands, err := Enumerate(db.Schema, qs, nil, nCands)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("fixture workload proposed only %d candidates", len(cands))
	}
	variants := make([]Variant, len(cands))
	for i, cand := range cands {
		variants[i] = Variant{Name: cand.Index, Indexes: []string{cand.Index}}
	}
	return c, Statements(qs), variants
}

// TestSweepMatchesHandRolledLoop pins the sweep against the advisor it
// replaced: an explicit loop that, per variant, builds an optimizer with
// the hypothetical IndexSet, plans every statement and sums per-plan
// predictions. Totals and the resulting ranking must agree exactly.
func TestSweepMatchesHandRolledLoop(t *testing.T) {
	db, st, qs := fixture(t)
	cat, stmts, variants := sweepFixture(t, 6)
	est := &fakeEst{}

	rep, err := cat.Sweep(context.Background(), est, stmts, variants)
	if err != nil {
		t.Fatal(err)
	}

	// The pre-subsystem advisor loop, verbatim semantics.
	handRolled := func(indexes []string) float64 {
		idx := optimizer.IndexSet{}
		for _, k := range indexes {
			idx[k] = true
		}
		opt := optimizer.New(db.Schema, st, idx, optimizer.DefaultCostParams())
		total := 0.0
		for _, q := range qs {
			p, err := opt.Plan(q)
			if err != nil {
				t.Fatal(err)
			}
			v, err := est.Predict(context.Background(), costmodel.PlanInput{
				DB: db, Query: q, Plan: p, OptimizerCost: optimizer.TotalCost(p),
			})
			if err != nil {
				t.Fatal(err)
			}
			total += v
		}
		return total
	}

	type ranked struct {
		name  string
		total float64
	}
	want := make([]ranked, len(variants))
	for i, v := range variants {
		want[i] = ranked{v.Name, handRolled(v.Indexes)}
	}
	sort.SliceStable(want, func(a, b int) bool {
		if want[a].total != want[b].total {
			return want[a].total < want[b].total
		}
		return want[a].name < want[b].name
	})

	if base := handRolled(nil); math.Abs(rep.Baseline.TotalSec-base) > 1e-12 {
		t.Fatalf("baseline total %v, hand-rolled %v", rep.Baseline.TotalSec, base)
	}
	if len(rep.Variants) != len(want) {
		t.Fatalf("got %d ranked variants, want %d", len(rep.Variants), len(want))
	}
	for i, w := range want {
		got := rep.Variants[i]
		if got.Name != w.name || math.Abs(got.TotalSec-w.total) > 1e-12 {
			t.Fatalf("rank %d: got (%s, %v), hand-rolled (%s, %v)", i, got.Name, got.TotalSec, w.name, w.total)
		}
	}
	if want[0].total < rep.Baseline.TotalSec && rep.Recommendation != want[0].name {
		t.Fatalf("recommendation %q, hand-rolled winner %q", rep.Recommendation, want[0].name)
	}
}

func TestSweepFusesOneBatch(t *testing.T) {
	cat, stmts, variants := sweepFixture(t, 4)
	est := &fakeEst{}
	rep, err := cat.Sweep(context.Background(), est, stmts, variants)
	if err != nil {
		t.Fatal(err)
	}
	wantItems := (len(variants) + 1) * len(stmts)
	if rep.Items != wantItems {
		t.Fatalf("Items = %d, want %d", rep.Items, wantItems)
	}
	if calls := est.batchCalls.Load(); calls != 1 {
		t.Fatalf("sweep issued %d batch calls, want 1 fused call", calls)
	}
	if max := est.batchMax.Load(); max != int64(wantItems) {
		t.Fatalf("fused batch size %d, want %d", max, wantItems)
	}
	if rep.Baseline.Name != "baseline" || len(rep.Baseline.Queries) != len(stmts) {
		t.Fatalf("baseline = %+v", rep.Baseline)
	}

	// Repeat sweep: identical report, now fully served from the
	// prepared-plan cache.
	rep2, err := cat.Sweep(context.Background(), est, stmts, variants)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("repeated sweep diverged from the first")
	}
	if cs := cat.CacheStats(); cs.Hits < int64(wantItems) {
		t.Fatalf("warm sweep hit the plan cache %d times, want >= %d", cs.Hits, wantItems)
	}
}

// TestSweepNeverMutatesStorage is the copy-on-write guarantee: many
// concurrent sweeps over hypothetical indexes leave the shared database
// without a single materialized index. Run under -race this also proves
// the catalog's caches are safe for concurrent use.
func TestSweepNeverMutatesStorage(t *testing.T) {
	db, _, _ := fixture(t)
	cat, stmts, variants := sweepFixture(t, 6)
	before := strings.Join(db.IndexedColumns(), ",")

	const sweeps = 8
	reports := make([]*Report, sweeps)
	var wg sync.WaitGroup
	errs := make([]error, sweeps)
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = cat.Sweep(context.Background(), &fakeEst{}, stmts, variants)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	if after := strings.Join(db.IndexedColumns(), ","); after != before {
		t.Fatalf("sweeps mutated shared storage: indexes %q -> %q", before, after)
	}
	for i := 1; i < sweeps; i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("concurrent sweep %d diverged", i)
		}
	}
}

func TestSweepContextCancellation(t *testing.T) {
	cat, stmts, variants := sweepFixture(t, 3)

	// Pre-canceled: the planning loop notices before any pricing.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cat.Sweep(pre, &fakeEst{}, stmts, variants); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled sweep err = %v, want context.Canceled", err)
	}

	// Canceled mid-sweep, while the fused batch is in flight: the sweep
	// returns the context's error, not a partial report.
	ctx, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel2()
	}()
	rep, err := cat.Sweep(ctx, &fakeEst{block: true}, stmts, variants)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sweep cancellation err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("canceled sweep returned a report")
	}
}

// TestSweepStructuredItemErrors: a statement that fails to price under
// some variant carries its own error; the rest of the sweep prices, and
// workload speedups only compare statements priced under both sides.
func TestSweepStructuredItemErrors(t *testing.T) {
	cat, stmts, variants := sweepFixture(t, 3)
	poisoned := stmts[0].Query
	est := &fakeEst{poison: func(in costmodel.PlanInput) error {
		if in.Query == poisoned {
			return fmt.Errorf("poisoned statement")
		}
		return nil
	}}

	rep, err := cat.Sweep(context.Background(), est, stmts, variants)
	if err != nil {
		t.Fatal(err)
	}
	check := func(vr VariantResult) {
		t.Helper()
		if vr.Errors != 1 || vr.Queries[0].Error == "" {
			t.Fatalf("%s: errors = %d, queries[0].Error = %q", vr.Name, vr.Errors, vr.Queries[0].Error)
		}
		if vr.Queries[0].PredictedSec != 0 || vr.Queries[0].SpeedupX != 0 {
			t.Fatalf("%s: errored statement still carries a prediction: %+v", vr.Name, vr.Queries[0])
		}
		for i := 1; i < len(vr.Queries); i++ {
			if vr.Queries[i].Error != "" || vr.Queries[i].PredictedSec <= 0 {
				t.Fatalf("%s: healthy statement %d = %+v", vr.Name, i, vr.Queries[i])
			}
		}
		if vr.TotalSec <= 0 {
			t.Fatalf("%s: total = %v", vr.Name, vr.TotalSec)
		}
	}
	check(rep.Baseline)
	for _, vr := range rep.Variants {
		check(vr)
		if vr.SpeedupX <= 0 {
			t.Fatalf("%s: no workload speedup despite shared healthy statements", vr.Name)
		}
	}
}

func TestSweepRequestLevelErrors(t *testing.T) {
	cat, stmts, variants := sweepFixture(t, 3)
	if _, err := cat.Sweep(context.Background(), &fakeEst{}, nil, variants); !errors.Is(err, ErrEmptyWorkload) {
		t.Fatalf("empty workload err = %v", err)
	}
	if _, err := cat.Sweep(context.Background(), &fakeEst{}, stmts, nil); !errors.Is(err, ErrNoVariants) {
		t.Fatalf("no variants err = %v", err)
	}
}
