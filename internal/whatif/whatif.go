// Package whatif turns the zero-shot cost model into a served index
// advisor: the paper's Section 4.1 "what-if" mode as a subsystem instead
// of an example. A sweep prices a workload against hypothetical
// index/config variants of a database — without executing anything and
// without mutating the database — and returns the variants ranked by
// predicted workload runtime.
//
// The package has three parts:
//
//   - a candidate enumerator (Enumerate) that proposes index candidates
//     from the schema's foreign keys and the workload's filter columns,
//     or validates an explicit user-supplied list;
//   - a copy-on-write hypothetical catalog (Catalog) that overlays
//     candidate indexes and cost-parameter variants on a database's
//     shared schema and statistics purely at the planner level — the
//     optimizer's IndexSet is advice to the planner, never a storage
//     mutation, so concurrent sweeps share one immutable database;
//   - a sweep executor (Catalog.Sweep) that plans every (variant ×
//     query) pair, prices the entire cross product through ONE
//     Estimator.PredictBatch call (the fused forward pass for the
//     zero-shot model), and assembles per-query and workload-level
//     speedups against the always-included baseline variant.
//
// Sweeps are the system's first naturally huge batches: a modest advise
// request (16 candidates × 64 queries) prices over a thousand plans in
// one fused pass.
package whatif

import (
	"errors"

	"github.com/zeroshot-db/zeroshot/internal/costmodel"
	"github.com/zeroshot-db/zeroshot/internal/query"
)

// Sentinel errors front ends map to request-level failures (wrapped;
// test with errors.Is).
var (
	// ErrEmptyWorkload marks a sweep request with no statements.
	ErrEmptyWorkload = errors.New("whatif: empty workload")
	// ErrBadCandidate marks a malformed or unresolvable explicit
	// candidate.
	ErrBadCandidate = errors.New("whatif: bad candidate")
	// ErrNoVariants marks a sweep request with no variants to compare.
	ErrNoVariants = errors.New("whatif: no variants")
)

// Request is the wire form of one what-if sweep: the workload to price
// and optional explicit index candidates. An empty Candidates list asks
// the enumerator to propose candidates from the schema and workload.
type Request struct {
	// SQL is the workload: one statement per entry.
	SQL []string `json:"sql"`
	// Candidates optionally names explicit index candidates as
	// "table.column". When set, each entry is validated strictly against
	// the schema and enumeration is skipped.
	Candidates []string `json:"candidates,omitempty"`
	// MaxCandidates caps the candidate set (default
	// DefaultMaxCandidates).
	MaxCandidates int `json:"max_candidates,omitempty"`
}

// Candidate is one proposed index.
type Candidate struct {
	// Index is the candidate's canonical "table.column" key.
	Index string `json:"index"`
	// Source records where the candidate came from: "user" (explicit),
	// "fk" (foreign-key join column) or "filter" (workload predicate
	// column).
	Source string `json:"source"`
}

// QueryResult is one statement's outcome under one variant. Errors are
// structured per item: a statement that fails to plan or price under one
// variant carries its own error and the rest of the sweep still prices.
type QueryResult struct {
	SQL          string  `json:"sql"`
	PredictedSec float64 `json:"predicted_sec"`
	// BaselineSec is the same statement's prediction under the baseline
	// variant, repeated here so per-query speedups read without joining
	// against the baseline block.
	BaselineSec float64 `json:"baseline_sec,omitempty"`
	// SpeedupX is BaselineSec / PredictedSec (>1 means the variant
	// helps this query); 0 when either side errored.
	SpeedupX float64 `json:"speedup_x,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// VariantResult is one variant's priced workload.
type VariantResult struct {
	// Name identifies the variant; the baseline is named "baseline".
	Name string `json:"name"`
	// Indexes lists the variant's hypothetical indexes.
	Indexes []string `json:"indexes,omitempty"`
	// TotalSec is the predicted workload runtime: the sum of predicted
	// runtimes over the statements that priced successfully.
	TotalSec float64 `json:"total_sec"`
	// SpeedupX is the workload-level speedup against the baseline,
	// computed over the statements that priced successfully under BOTH
	// variants so partial failures cannot skew the ratio; 0 when no
	// statement is shared.
	SpeedupX float64 `json:"speedup_x,omitempty"`
	// Queries aligns with the sweep's statements.
	Queries []QueryResult `json:"queries"`
	// Errors counts this variant's per-statement failures.
	Errors int `json:"errors,omitempty"`
}

// Report is one answered sweep: the candidates considered, the baseline,
// and the hypothetical variants ranked by predicted workload runtime
// (fastest first, ties broken by name).
type Report struct {
	Database   string      `json:"db,omitempty"`
	Model      string      `json:"model,omitempty"`
	Candidates []Candidate `json:"candidates,omitempty"`
	// Baseline is the workload priced with no hypothetical changes.
	Baseline VariantResult `json:"baseline"`
	// Variants is ranked ascending by TotalSec.
	Variants []VariantResult `json:"variants"`
	// Items is the number of (variant × statement) pairs priced,
	// baseline included — the size of the fused prediction batch.
	Items int `json:"items"`
	// Recommendation names the top-ranked variant, empty when no variant
	// beats the baseline.
	Recommendation string `json:"recommendation,omitempty"`
}

// Statement is one workload entry carried through a sweep: the SQL text
// (echoed in results), its plan-cache fingerprint, and the parsed query.
type Statement struct {
	SQL         string
	Fingerprint string
	Query       *query.Query
}

// Statements builds sweep statements from parsed queries, rendering each
// query's SQL and fingerprinting it the same way the serving plan cache
// does.
func Statements(qs []*query.Query) []Statement {
	out := make([]Statement, len(qs))
	for i, q := range qs {
		sql := q.SQL()
		out[i] = Statement{SQL: sql, Fingerprint: costmodel.Fingerprint(sql), Query: q}
	}
	return out
}
