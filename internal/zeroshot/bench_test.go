package zeroshot

import (
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/nn"
)

func benchSamples(b *testing.B, n int) []Sample {
	b.Helper()
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := collect.Run(db, collect.Options{Queries: n, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	enc := encoding.NewPlanEncoder(db.Schema, encoding.CardExact)
	samples := make([]Sample, 0, len(recs))
	for _, r := range recs {
		g, err := enc.Encode(r.Plan)
		if err != nil {
			b.Fatal(err)
		}
		samples = append(samples, Sample{Graph: g, RuntimeSec: r.RuntimeSec})
	}
	return samples
}

// BenchmarkPredict measures single-plan inference latency — the number
// that matters if the model sits inside an optimizer loop (Section 4.2).
func BenchmarkPredict(b *testing.B) {
	samples := benchSamples(b, 20)
	m := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(samples[i%len(samples)].Graph)
	}
}

// BenchmarkTrainEpoch measures one training pass over 100 plans.
func BenchmarkTrainEpoch(b *testing.B) {
	samples := benchSamples(b, 100)
	cfg := DefaultConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(cfg)
		if _, err := m.Train(samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFineTune measures the adaptation-loop workload — a few
// epochs of fine-tuning over a drift window — under a serial worker cap
// and under the default one-worker-per-core cap. Both sub-benchmarks
// train to bitwise-identical weights (pinned by
// TestTrainBitwiseIdenticalAcrossWorkerCounts); the comparison is pure
// wall-time and allocation cost. E14 in EXPERIMENTS.md records the
// numbers.
func BenchmarkFineTune(b *testing.B) {
	samples := benchSamples(b, 100)
	base := New(DefaultConfig())
	if _, err := base.Train(samples[:50]); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = one worker per core
	} {
		b.Run(bc.name, func(b *testing.B) {
			defer nn.SetMaxWorkers(nn.SetMaxWorkers(bc.workers))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := New(base.Config())
				for j, p := range m.Params() {
					copy(p.Val.Data, base.Params()[j].Val.Data)
				}
				b.StartTimer()
				if _, err := m.FineTune(samples[50:], 3, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
