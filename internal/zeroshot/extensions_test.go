package zeroshot

import (
	"math"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/hwsim"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
)

// TestZeroShotPredictsResourceConsumption exercises the Section 4.3
// extension: the same model class, trained on peak-memory targets instead
// of runtimes, predicts the resource consumption of queries on an unseen
// database.
func TestZeroShotPredictsResourceConsumption(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.MaxRows = 15000
	trainDBs, err := datagen.TrainingCorpus(3, 41, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var train []Sample
	for i, db := range trainDBs {
		recs, err := collect.Run(db, collect.Options{Queries: 120, Seed: int64(700 + i)})
		if err != nil {
			t.Fatal(err)
		}
		enc := encoding.NewPlanEncoder(db.Schema, encoding.CardExact)
		for _, r := range recs {
			g, err := enc.Encode(r.Plan)
			if err != nil {
				t.Fatal(err)
			}
			// Target is megabytes of peak working set, not runtime.
			train = append(train, Sample{Graph: g, RuntimeSec: r.PeakMemBytes / (1 << 20)})
		}
	}
	m := New(smallConfig())
	if _, err := m.Train(train); err != nil {
		t.Fatal(err)
	}

	imdb, err := datagen.IMDBLike(0.05)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := collect.Run(imdb, collect.Options{Queries: 50, Seed: 808})
	if err != nil {
		t.Fatal(err)
	}
	enc := encoding.NewPlanEncoder(imdb.Schema, encoding.CardExact)
	var preds, actuals []float64
	meanLog := 0.0
	for _, r := range recs {
		g, err := enc.Encode(r.Plan)
		if err != nil {
			t.Fatal(err)
		}
		preds = append(preds, m.Predict(g))
		actuals = append(actuals, r.PeakMemBytes/(1<<20))
		meanLog += math.Log(r.PeakMemBytes / (1 << 20))
	}
	meanLog /= float64(len(recs))
	sum, err := metrics.Summarize(preds, actuals)
	if err != nil {
		t.Fatal(err)
	}
	constPreds := make([]float64, len(actuals))
	for i := range constPreds {
		constPreds[i] = math.Exp(meanLog)
	}
	constSum, _ := metrics.Summarize(constPreds, actuals)
	t.Logf("resource prediction on unseen db: %v (constant baseline %v)", sum, constSum)
	if sum.Median > constSum.Median {
		t.Fatalf("memory model median %.2f no better than constant %.2f", sum.Median, constSum.Median)
	}
	if sum.Median > 2.5 {
		t.Fatalf("memory model median q-error %.2f too high", sum.Median)
	}
}

// hwDescriptor converts a simulator profile into encoding features.
func hwDescriptor(p hwsim.Profile) encoding.Hardware {
	relCPU, relSeq, relRand, cacheMB, pool := p.Descriptor()
	return encoding.Hardware{
		RelCPU: relCPU, RelSeqIO: relSeq, RelRandIO: relRand,
		CacheMB: cacheMB, BufferPoolPages: pool,
	}
}

// TestCrossHardwarePrediction exercises the other Section 4.3 extension:
// with hardware descriptors in the encoding, one model trained on
// executions from two machines predicts per-machine runtimes on an unseen
// database; without the descriptors the mixed-hardware corpus has
// conflicting targets and the model degrades.
func TestCrossHardwarePrediction(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.MaxRows = 15000
	trainDBs, err := datagen.TrainingCorpus(3, 43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	profiles := []hwsim.Profile{hwsim.DefaultProfile(), hwsim.FastProfile()}
	var aware, blind []Sample
	for i, db := range trainDBs {
		for pi, prof := range profiles {
			recs, err := collect.Run(db, collect.Options{
				Queries: 70,
				Seed:    int64(100*i + pi),
				Profile: prof,
			})
			if err != nil {
				t.Fatal(err)
			}
			encAware := encoding.NewPlanEncoder(db.Schema, encoding.CardExact).WithHardware(hwDescriptor(prof))
			encBlind := encoding.NewPlanEncoder(db.Schema, encoding.CardExact)
			for _, r := range recs {
				ga, err := encAware.Encode(r.Plan)
				if err != nil {
					t.Fatal(err)
				}
				gb, err := encBlind.Encode(r.Plan)
				if err != nil {
					t.Fatal(err)
				}
				aware = append(aware, Sample{Graph: ga, RuntimeSec: r.RuntimeSec})
				blind = append(blind, Sample{Graph: gb, RuntimeSec: r.RuntimeSec})
			}
		}
	}
	mAware := New(smallConfig())
	if _, err := mAware.Train(aware); err != nil {
		t.Fatal(err)
	}
	mBlind := New(smallConfig())
	if _, err := mBlind.Train(blind); err != nil {
		t.Fatal(err)
	}

	imdb, err := datagen.IMDBLike(0.05)
	if err != nil {
		t.Fatal(err)
	}
	var awarePreds, blindPreds, actuals []float64
	for pi, prof := range profiles {
		recs, err := collect.Run(imdb, collect.Options{Queries: 30, Seed: int64(9000 + pi), Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		encAware := encoding.NewPlanEncoder(imdb.Schema, encoding.CardExact).WithHardware(hwDescriptor(prof))
		encBlind := encoding.NewPlanEncoder(imdb.Schema, encoding.CardExact)
		for _, r := range recs {
			ga, err := encAware.Encode(r.Plan)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := encBlind.Encode(r.Plan)
			if err != nil {
				t.Fatal(err)
			}
			awarePreds = append(awarePreds, mAware.Predict(ga))
			blindPreds = append(blindPreds, mBlind.Predict(gb))
			actuals = append(actuals, r.RuntimeSec)
		}
	}
	awareSum, err := metrics.Summarize(awarePreds, actuals)
	if err != nil {
		t.Fatal(err)
	}
	blindSum, _ := metrics.Summarize(blindPreds, actuals)
	t.Logf("cross-hardware: aware %v, blind %v", awareSum, blindSum)
	if awareSum.Median > blindSum.Median {
		t.Fatalf("hardware-aware model median %.2f no better than blind %.2f",
			awareSum.Median, blindSum.Median)
	}
}
