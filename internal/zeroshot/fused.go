package zeroshot

import (
	"math"
	"sync"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/nn"
)

// packPool recycles BatchGraph packings across PredictBatch calls so
// steady-state batching reuses the slab buffers.
var packPool = sync.Pool{New: func() any { return new(encoding.BatchGraph) }}

// shardGrain is the minimum graphs per fused shard: below 2*shardGrain
// a batch packs and runs as one fused pass on the calling goroutine
// (the common warm serving batch), above it the batch splits into one
// contiguous shard per core.
const shardGrain = 32

// PredictBatch predicts runtimes in seconds for fused batches of
// encoded plans: graphs are packed into an encoding.BatchGraph and the
// network executes per-node-type encoder slabs, per-level combine slabs
// and a single readout over all roots, on an inference-only nn context
// (no tape, pooled buffers). Large batches split into one contiguous
// shard per core, each its own pack + fused pass on the nn worker pool
// — graphs are mutually independent, so sharding scales the whole pass
// (packing included) near-linearly. The result is bitwise identical to
// calling Predict per graph — every packed row goes through the same
// per-row tensor operations the tape path runs, whatever the shard
// split — while doing near-zero allocations at steady state. Safe for
// concurrent use; training keeps the tape path.
func (m *Model) PredictBatch(gs []*encoding.Graph) []float64 {
	out := make([]float64, len(gs))
	if len(gs) == 0 {
		return out
	}
	nn.RowParallel(len(gs), shardGrain, func(lo, hi int) {
		bg := packPool.Get().(*encoding.BatchGraph)
		bg.Pack(gs[lo:hi])
		inf := nn.GetInference()
		pred := m.fusedForward(inf, bg)
		for g, v := range pred.Data[:hi-lo] {
			out[lo+g] = runtimeFromLog(v)
		}
		inf.Release()
		packPool.Put(bg)
	})
	return out
}

// fusedForward runs the graph network over a packed batch. Stages
// mirror forward exactly:
//
//  1. encoders — one fused pass per node type over its feature slab,
//     scattered to per-node hidden rows;
//  2. combine — one fused pass per topological level: each level-k
//     node's input row is [h0 | sum of child hidden states] (children
//     sit at lower levels, so their rows are final);
//  3. readout — one fused pass over the gathered root rows (or, in
//     FlatSum mode, each graph's mean node hidden state).
func (m *Model) fusedForward(inf *nn.Inference, bg *encoding.BatchGraph) *nn.Tensor {
	hd := m.cfg.Hidden
	// Every row of the staging tensors is fully overwritten before being
	// read, so none of them needs the zeroing memclr.
	hidden := inf.TensorUninit(bg.NumNodes, hd)
	var enc [encoding.NumNodeTypes]*nn.Tensor
	for t := 0; t < encoding.NumNodeTypes; t++ {
		if n := bg.TypeCount[t]; n > 0 {
			x := nn.Wrap(n, encoding.FeatDim(encoding.NodeType(t)), bg.Feats[t])
			enc[t] = m.encoders[t].Infer(inf, x)
		}
	}
	for i := 0; i < bg.NumNodes; i++ {
		r := int(bg.TypeRow[i])
		src := enc[bg.Types[i]]
		copy(hidden.Data[i*hd:(i+1)*hd], src.Data[r*hd:(r+1)*hd])
	}

	if !m.cfg.FlatSum {
		for lvl := 1; lvl <= bg.NumLevels(); lvl++ {
			nodes := bg.Level(lvl)
			in := inf.TensorUninit(len(nodes), 2*hd)
			for j, i := range nodes {
				row := in.Data[j*2*hd : (j+1)*2*hd]
				copy(row[:hd], hidden.Data[int(i)*hd:(int(i)+1)*hd])
				cs := bg.ChildrenOf(i)
				childSum := row[hd:]
				copy(childSum, hidden.Data[int(cs[0])*hd:(int(cs[0])+1)*hd])
				for _, c := range cs[1:] {
					for k, v := range hidden.Data[int(c)*hd : (int(c)+1)*hd] {
						childSum[k] += v
					}
				}
			}
			combined := m.combine.Infer(inf, in)
			for j, i := range nodes {
				copy(hidden.Data[int(i)*hd:(int(i)+1)*hd], combined.Data[j*hd:(j+1)*hd])
			}
		}
	}

	roots := inf.TensorUninit(bg.NumGraphs, hd)
	for g := 0; g < bg.NumGraphs; g++ {
		dst := roots.Data[g*hd : (g+1)*hd]
		if m.cfg.FlatSum {
			start, end := int(bg.GraphStart[g]), int(bg.GraphStart[g+1])
			copy(dst, hidden.Data[start*hd:(start+1)*hd])
			for i := start + 1; i < end; i++ {
				for k, v := range hidden.Data[i*hd : (i+1)*hd] {
					dst[k] += v
				}
			}
			s := 1 / float64(end-start)
			for k := range dst {
				dst[k] *= s
			}
		} else {
			r := int(bg.Roots[g])
			copy(dst, hidden.Data[r*hd:(r+1)*hd])
		}
	}
	return m.readout.Infer(inf, roots)
}

// runtimeFromLog converts a predicted log-runtime into seconds, clamped
// to a sane runtime band (1 microsecond .. ~3 hours) so a wild
// extrapolation cannot overflow downstream metrics. Shared by the tape
// and fused inference paths so both clamp identically.
func runtimeFromLog(logRT float64) float64 {
	if logRT > 9.2 {
		logRT = 9.2
	}
	if logRT < -13.8 {
		logRT = -13.8
	}
	return math.Exp(logRT)
}
