package zeroshot

import (
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
)

// fusedFixture trains a small model and returns it with held-out
// graphs. FlatSum selects the ablation A2 architecture, whose fused
// path takes the per-graph mean-pooling branch.
func fusedFixture(t *testing.T, flatSum bool) (*Model, []*encoding.Graph) {
	t.Helper()
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	samples := gatherSamples(t, db, 80, 21, encoding.CardExact)
	cfg := smallConfig()
	cfg.Epochs = 3
	cfg.FlatSum = flatSum
	m := New(cfg)
	if _, err := m.Train(samples[:50]); err != nil {
		t.Fatal(err)
	}
	graphs := make([]*encoding.Graph, 0, len(samples)-50)
	for _, s := range samples[50:] {
		graphs = append(graphs, s.Graph)
	}
	return m, graphs
}

// TestPredictBatchBitwiseEqualsPredict pins the fused batched forward
// pass (BatchGraph packing + inference-only execution) bitwise to the
// tape-building Predict, across batch sizes including 1, and across
// repeated calls so recycled pool buffers cannot leak state between
// batches.
func TestPredictBatchBitwiseEqualsPredict(t *testing.T) {
	for _, tc := range []struct {
		name    string
		flatSum bool
	}{
		{"message-passing", false},
		{"flat-sum", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, graphs := fusedFixture(t, tc.flatSum)
			want := make([]float64, len(graphs))
			for i, g := range graphs {
				want[i] = m.Predict(g)
			}
			for _, size := range []int{1, 3, len(graphs)} {
				got := m.PredictBatch(graphs[:size])
				if len(got) != size {
					t.Fatalf("batch %d returned %d predictions", size, len(got))
				}
				for i, p := range got {
					if p != want[i] {
						t.Fatalf("batch %d item %d: fused %v != tape %v", size, i, p, want[i])
					}
				}
			}
			// Second full pass through the recycled pack/inference pools.
			again := m.PredictBatch(graphs)
			for i, p := range again {
				if p != want[i] {
					t.Fatalf("repeat pass item %d: %v != %v", i, p, want[i])
				}
			}
		})
	}
}

// TestPredictBatchMixedSchemas packs graphs encoded against two
// different databases into one batch — the shape a multi-database
// serving session's coalescer produces — and checks per-graph results
// match single predictions.
func TestPredictBatchMixedSchemas(t *testing.T) {
	imdb, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	cfg := datagen.DefaultConfig()
	cfg.MaxRows = 5000
	other, err := datagen.Generate("fusedmix", 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var graphs []*encoding.Graph
	for _, s := range gatherSamples(t, imdb, 10, 31, encoding.CardExact) {
		graphs = append(graphs, s.Graph)
	}
	for _, s := range gatherSamples(t, other, 10, 32, encoding.CardExact) {
		graphs = append(graphs, s.Graph)
	}
	m := New(smallConfig())
	got := m.PredictBatch(graphs)
	for i, g := range graphs {
		if want := m.Predict(g); got[i] != want {
			t.Fatalf("mixed batch item %d: %v != %v", i, got[i], want)
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	m := New(smallConfig())
	if got := m.PredictBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %v", got)
	}
}
