package zeroshot

import (
	"encoding/gob"
	"fmt"
	"io"
)

// encodeGob and decodeGob wrap gob with package-prefixed errors.
func encodeGob(w io.Writer, v any) error {
	if err := gob.NewEncoder(w).Encode(v); err != nil {
		return fmt.Errorf("zeroshot: encode: %w", err)
	}
	return nil
}

func decodeGob(r io.Reader, v any) error {
	if err := gob.NewDecoder(r).Decode(v); err != nil {
		return fmt.Errorf("zeroshot: decode: %w", err)
	}
	return nil
}
