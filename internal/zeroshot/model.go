// Package zeroshot implements the paper's primary contribution: the
// zero-shot cost model — a graph neural network over the transferable
// query-plan encoding that is trained on query executions from many
// databases and predicts runtimes on databases it has never seen.
//
// Architecture (Section 3.1 of the paper):
//
//  1. Node-type-specific encoder MLPs map each graph node's transferable
//     features to a fixed-size initial hidden state.
//  2. A bottom-up message-passing phase over the plan DAG: the hidden
//     states of a node's children are summed (DeepSets) and combined with
//     the node's own hidden state by an MLP.
//  3. The root's hidden state feeds a readout MLP predicting log-runtime.
//
// Because every feature keeps its meaning across databases, the learned
// weights transfer: inference on an unseen database is exactly the same
// forward pass over that database's encoded plans.
package zeroshot

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/nn"
)

// Config holds model and training hyperparameters.
type Config struct {
	// Hidden is the hidden-state dimension.
	Hidden int
	// Epochs is the number of training passes.
	Epochs int
	// BatchSize is the number of samples per optimizer step.
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// Seed drives parameter initialization and shuffling.
	Seed int64
	// HuberDelta is the robust-loss threshold on log-runtime residuals.
	HuberDelta float64
	// FlatSum disables message passing (ablation A2): the prediction uses
	// the sum of all node encodings with no structural combination.
	FlatSum bool
}

// DefaultConfig returns hyperparameters sized for CPU training: small
// enough to train in tens of seconds on a few thousand plans, large enough
// to fit the runtime function.
func DefaultConfig() Config {
	return Config{
		Hidden:     32,
		Epochs:     24,
		BatchSize:  16,
		LR:         3e-3,
		Seed:       1,
		HuberDelta: 1.0,
	}
}

// Sample is one training example: an encoded plan graph and its runtime.
type Sample struct {
	Graph *encoding.Graph
	// RuntimeSec is the (simulated) measured runtime in seconds.
	RuntimeSec float64
}

// Model is the zero-shot cost model.
type Model struct {
	cfg      Config
	encoders [encoding.NumNodeTypes]*nn.MLP
	combine  *nn.MLP
	readout  *nn.MLP
	rng      *rand.Rand

	// order is the epoch permutation buffer, reused across epochs and
	// Train/FineTune calls instead of reallocated per call.
	order []int
	// scratch pools trainScratch sets (tape + private gradients +
	// target) across shards, minibatches and training runs. Per-model,
	// because the gradient buffers mirror this model's parameters.
	scratch sync.Pool
}

// trainScratch is one training worker's private state: a recycled tape,
// a private gradient set the tape accumulates into (so concurrent
// shards never touch the shared parameter gradients), and a reusable
// 1x1 target tensor.
type trainScratch struct {
	tape   *nn.Tape
	grads  *nn.GradSet
	target *nn.Tensor
}

// New creates a randomly initialized model.
func New(cfg Config) *Model {
	if cfg.Hidden <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg, rng: rng}
	for t := 0; t < encoding.NumNodeTypes; t++ {
		in := encoding.FeatDim(encoding.NodeType(t))
		m.encoders[t] = nn.NewMLP(rng, in, cfg.Hidden, cfg.Hidden)
	}
	m.combine = nn.NewMLP(rng, 2*cfg.Hidden, cfg.Hidden, cfg.Hidden)
	m.readout = nn.NewMLP(rng, cfg.Hidden, cfg.Hidden, 1)
	m.scratch.New = func() any {
		sc := &trainScratch{
			tape:   nn.NewTape(),
			grads:  nn.NewGradSet(m.Params()),
			target: nn.NewTensor(1, 1),
		}
		sc.tape.RemapGrads(sc.grads.Remap())
		return sc
	}
	return m
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Params returns all trainable parameters in a stable order.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, e := range m.encoders {
		ps = append(ps, e.Params()...)
	}
	ps = append(ps, m.combine.Params()...)
	ps = append(ps, m.readout.Params()...)
	return ps
}

// forward runs the graph network on the tape and returns the predicted
// log-runtime as a 1x1 Var.
func (m *Model) forward(tp *nn.Tape, g *encoding.Graph) *nn.Var {
	hidden := make(map[*encoding.GNode]*nn.Var, len(g.Nodes))
	var all []*nn.Var
	for _, n := range g.Nodes {
		h0 := m.encoders[n.Type].Apply(tp, tp.ConstRow(n.Feat))
		h := h0
		if !m.cfg.FlatSum && len(n.Children) > 0 {
			children := make([]*nn.Var, len(n.Children))
			for i, c := range n.Children {
				children[i] = hidden[c]
			}
			childSum := tp.Sum(children...)
			h = m.combine.Apply(tp, tp.Concat(h0, childSum))
		}
		hidden[n] = h
		all = append(all, h)
	}
	root := hidden[g.Root]
	if m.cfg.FlatSum {
		root = tp.ScaleVar(tp.Sum(all...), 1/float64(len(all)))
	}
	return m.readout.Apply(tp, root)
}

// Predict returns the predicted runtime in seconds for an encoded plan.
// It runs the tape-building forward pass — the reference implementation
// the fused PredictBatch is pinned bitwise-equal to; batch callers
// should prefer PredictBatch, which skips tape and gradient allocation
// entirely.
func (m *Model) Predict(g *encoding.Graph) float64 {
	tp := nn.NewTape()
	out := m.forward(tp, g)
	return runtimeFromLog(out.Val.Data[0])
}

// TrainResult reports the per-epoch mean training loss and the
// end-to-end training throughput.
type TrainResult struct {
	EpochLoss []float64
	// WallTime is the wall-clock duration of the whole training run
	// (validation through the last optimizer step).
	WallTime time.Duration
	// SamplesPerSec is the end-to-end throughput: samples x epochs
	// divided by WallTime.
	SamplesPerSec float64
}

// Train fits the model on the samples (runtime targets in log space,
// Huber loss, Adam with minibatch accumulation). It returns the loss
// trajectory. Training is deterministic for a fixed Config.Seed,
// bitwise independent of the worker count (see train).
func (m *Model) Train(samples []Sample) (*TrainResult, error) {
	return m.TrainCtx(context.Background(), samples)
}

// TrainCtx is Train with cancellation: ctx is checked at epoch and
// minibatch boundaries, so a canceled training run stops promptly
// instead of finishing every remaining epoch.
func (m *Model) TrainCtx(ctx context.Context, samples []Sample) (*TrainResult, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("zeroshot: no training samples")
	}
	return m.train(ctx, samples, m.cfg.Epochs, m.cfg.LR)
}

// FineTune continues training on samples from a new database — the paper's
// few-shot mode. A reduced learning rate preserves the pretrained system
// knowledge while adapting to the target.
func (m *Model) FineTune(samples []Sample, epochs int, lr float64) (*TrainResult, error) {
	return m.FineTuneCtx(context.Background(), samples, epochs, lr)
}

// FineTuneCtx is FineTune with cancellation, checked at epoch and
// minibatch boundaries — the adaptation loop's background fine-tune
// runs under the serve process lifetime and must stop on drain.
func (m *Model) FineTuneCtx(ctx context.Context, samples []Sample, epochs int, lr float64) (*TrainResult, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("zeroshot: no fine-tuning samples")
	}
	if epochs <= 0 {
		epochs = 8
	}
	if lr <= 0 {
		lr = m.cfg.LR / 4
	}
	return m.train(ctx, samples, epochs, lr)
}

// maxGradShards fixes how many gradient-reduction shards a minibatch
// splits into. The shard layout is a function of the minibatch length
// ONLY — never of the worker count — so the fixed-order reduce yields
// bitwise identical weights for any nn.SetMaxWorkers value: workers
// only decide which goroutine computes which shard, not what any shard
// computes or the order shards reduce in. Eight shards bound both the
// parallel fan-out per optimizer step and the number of private
// gradient sets alive at once.
const maxGradShards = 8

// shardBounds returns the s-th of `shards` balanced contiguous ranges
// covering [0, n).
func shardBounds(n, shards, s int) (lo, hi int) {
	q, r := n/shards, n%shards
	lo = s * q
	if s < r {
		lo += s
	} else {
		lo += r
	}
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

// train is the data-parallel training engine. Each epoch shuffles the
// reused order buffer, then walks it in minibatches; each minibatch
// splits into up to maxGradShards contiguous shards that run
// forward+backward concurrently on the nn worker pool, every shard
// accumulating into a pooled private gradient set over a pooled,
// scratch-recycling tape. Shard gradients and losses then reduce into
// the optimizer's shared tensors in ascending shard order. The result —
// weights and EpochLoss — is bitwise identical for any worker count,
// and the serial path is the same code with the shard loop run inline.
func (m *Model) train(ctx context.Context, samples []Sample, epochs int, lr float64) (*TrainResult, error) {
	for i, s := range samples {
		if s.Graph == nil || s.Graph.Root == nil {
			return nil, fmt.Errorf("zeroshot: sample %d has no graph", i)
		}
		if s.RuntimeSec <= 0 || math.IsNaN(s.RuntimeSec) || math.IsInf(s.RuntimeSec, 0) {
			return nil, fmt.Errorf("zeroshot: sample %d has invalid runtime %v", i, s.RuntimeSec)
		}
	}
	start := time.Now()
	params := m.Params()
	opt := nn.NewAdam(params, lr)
	if cap(m.order) < len(samples) {
		m.order = make([]int, len(samples))
	}
	order := m.order[:len(samples)]
	for i := range order {
		order[i] = i
	}
	res := &TrainResult{}
	batch := m.cfg.BatchSize
	if batch <= 0 {
		batch = 16
	}
	var (
		shardScr  [maxGradShards]*trainScratch
		shardLoss [maxGradShards]float64
	)
	for epoch := 0; epoch < epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("zeroshot: training aborted after %d epochs: %w", epoch, err)
		}
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for base := 0; base < len(order); base += batch {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("zeroshot: training aborted mid-epoch: %w", err)
			}
			end := base + batch
			if end > len(order) {
				end = len(order)
			}
			mb := order[base:end]
			shards := len(mb)
			if shards > maxGradShards {
				shards = maxGradShards
			}
			nn.RowParallel(shards, 1, func(slo, shi int) {
				for s := slo; s < shi; s++ {
					sc := m.scratch.Get().(*trainScratch)
					sc.grads.Zero()
					lo, hi := shardBounds(len(mb), shards, s)
					loss := 0.0
					for _, idx := range mb[lo:hi] {
						loss += m.trainStep(sc, samples[idx])
					}
					shardLoss[s] = loss
					shardScr[s] = sc
				}
			})
			// Deterministic reduce: shard gradients and losses fold into
			// the shared tensors in ascending shard order, whatever order
			// the workers finished in.
			for s := 0; s < shards; s++ {
				sc := shardScr[s]
				shardScr[s] = nil
				sc.grads.AddTo(params)
				epochLoss += shardLoss[s]
				m.scratch.Put(sc)
			}
			opt.Step(float64(len(mb)))
			opt.ZeroGrad()
		}
		res.EpochLoss = append(res.EpochLoss, epochLoss/float64(len(samples)))
	}
	res.WallTime = time.Since(start)
	if secs := res.WallTime.Seconds(); secs > 0 {
		res.SamplesPerSec = float64(len(samples)*epochs) / secs
	}
	return res, nil
}

// trainStep runs one sample's forward+backward on the worker's pooled
// tape, accumulating into its private gradient set, and returns the
// sample loss.
func (m *Model) trainStep(sc *trainScratch, s Sample) float64 {
	sc.tape.Reset()
	out := m.forward(sc.tape, s.Graph)
	sc.target.Data[0] = math.Log(s.RuntimeSec)
	loss := sc.tape.HuberLoss(out, sc.target, m.cfg.HuberDelta)
	sc.tape.Backward(loss)
	return loss.Val.Data[0]
}

// savedModel is the gob header preceding the parameters.
type savedModel struct {
	Hidden  int
	FlatSum bool
}

// Save writes the model architecture and weights to w.
func (m *Model) Save(w io.Writer) error {
	hdr := savedModel{Hidden: m.cfg.Hidden, FlatSum: m.cfg.FlatSum}
	if err := encodeGob(w, hdr); err != nil {
		return err
	}
	return nn.SaveParams(w, m.Params())
}

// Load reads a model saved by Save. Training hyperparameters of cfg are
// kept; architecture fields must match the saved model.
func Load(r io.Reader, cfg Config) (*Model, error) {
	// The header and the parameters are read by separate gob decoders; a
	// reader without ReadByte would be re-wrapped by gob and over-read, so
	// share one ByteReader across both.
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var hdr savedModel
	if err := decodeGob(r, &hdr); err != nil {
		return nil, err
	}
	if cfg.Hidden == 0 {
		cfg = DefaultConfig()
	}
	cfg.Hidden = hdr.Hidden
	cfg.FlatSum = hdr.FlatSum
	m := New(cfg)
	if err := nn.LoadParams(r, m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}
