package zeroshot

import (
	"bytes"
	"math"
	"testing"

	"github.com/zeroshot-db/zeroshot/internal/collect"
	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/metrics"
	"github.com/zeroshot-db/zeroshot/internal/storage"
)

// gatherSamples collects records from a database and encodes them.
func gatherSamples(t *testing.T, db *storage.Database, n int, seed int64, card encoding.CardSource) []Sample {
	t.Helper()
	recs, err := collect.Run(db, collect.Options{Queries: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	enc := encoding.NewPlanEncoder(db.Schema, card)
	samples := make([]Sample, 0, len(recs))
	for _, r := range recs {
		g, err := enc.Encode(r.Plan)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{Graph: g, RuntimeSec: r.RuntimeSec})
	}
	return samples
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = 24
	cfg.Epochs = 14
	return cfg
}

// TestZeroShotGeneralizesToUnseenDatabase is the headline property: train
// on synthetic databases, predict on the never-seen IMDB-like database,
// and beat a constant predictor by a wide margin.
func TestZeroShotGeneralizesToUnseenDatabase(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.MaxRows = 20000
	trainDBs, err := datagen.TrainingCorpus(4, 11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var train []Sample
	for i, db := range trainDBs {
		train = append(train, gatherSamples(t, db, 120, int64(100+i), encoding.CardExact)...)
	}
	m := New(smallConfig())
	res, err := m.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first {
		t.Fatalf("training loss did not decrease: %v -> %v", first, last)
	}

	imdb, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	test := gatherSamples(t, imdb, 60, 999, encoding.CardExact)
	preds := make([]float64, len(test))
	actuals := make([]float64, len(test))
	meanLog := 0.0
	for i, s := range test {
		preds[i] = m.Predict(s.Graph)
		actuals[i] = s.RuntimeSec
		meanLog += math.Log(s.RuntimeSec)
	}
	meanLog /= float64(len(test))
	sum, err := metrics.Summarize(preds, actuals)
	if err != nil {
		t.Fatal(err)
	}
	// Constant predictor (geometric mean runtime) baseline.
	constPred := make([]float64, len(test))
	for i := range constPred {
		constPred[i] = math.Exp(meanLog)
	}
	constSum, _ := metrics.Summarize(constPred, actuals)
	t.Logf("zero-shot on unseen db: %v; constant baseline: %v", sum, constSum)
	if sum.Median >= constSum.Median {
		t.Fatalf("zero-shot median q-error %.2f no better than constant %.2f", sum.Median, constSum.Median)
	}
	if sum.Median > 3.0 {
		t.Fatalf("zero-shot median q-error %.2f too high for an in-family unseen db", sum.Median)
	}
}

func TestTrainRejectsBadSamples(t *testing.T) {
	m := New(smallConfig())
	if _, err := m.Train(nil); err == nil {
		t.Fatal("accepted empty training set")
	}
	if _, err := m.Train([]Sample{{Graph: nil, RuntimeSec: 1}}); err == nil {
		t.Fatal("accepted nil graph")
	}
	db, _ := datagen.IMDBLike(0.02)
	s := gatherSamples(t, db, 1, 1, encoding.CardEstimated)
	s[0].RuntimeSec = -1
	if _, err := m.Train(s); err == nil {
		t.Fatal("accepted negative runtime")
	}
}

func TestPredictDeterministic(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	s := gatherSamples(t, db, 5, 2, encoding.CardEstimated)
	m := New(smallConfig())
	for _, smp := range s {
		if m.Predict(smp.Graph) != m.Predict(smp.Graph) {
			t.Fatal("prediction not deterministic")
		}
	}
}

func TestPredictBounded(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	s := gatherSamples(t, db, 5, 3, encoding.CardEstimated)
	m := New(smallConfig())
	for _, smp := range s {
		p := m.Predict(smp.Graph)
		if p <= 0 || math.IsInf(p, 0) || math.IsNaN(p) {
			t.Fatalf("prediction %v out of bounds", p)
		}
	}
}

func TestFineTuneImprovesOnTarget(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.MaxRows = 15000
	trainDBs, err := datagen.TrainingCorpus(2, 31, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var train []Sample
	for i, db := range trainDBs {
		train = append(train, gatherSamples(t, db, 80, int64(300+i), encoding.CardExact)...)
	}
	m := New(smallConfig())
	if _, err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	imdb, _ := datagen.IMDBLike(0.02)
	target := gatherSamples(t, imdb, 80, 555, encoding.CardExact)
	ftSamples, test := target[:40], target[40:]

	evalMedian := func() float64 {
		preds := make([]float64, len(test))
		actuals := make([]float64, len(test))
		for i, s := range test {
			preds[i] = m.Predict(s.Graph)
			actuals[i] = s.RuntimeSec
		}
		sum, _ := metrics.Summarize(preds, actuals)
		return sum.Median
	}
	before := evalMedian()
	if _, err := m.FineTune(ftSamples, 10, 0); err != nil {
		t.Fatal(err)
	}
	after := evalMedian()
	t.Logf("few-shot: median q-error %v -> %v", before, after)
	if after > before*1.5 {
		t.Fatalf("fine-tuning made the model much worse: %v -> %v", before, after)
	}
}

func TestFineTuneRejectsEmpty(t *testing.T) {
	m := New(smallConfig())
	if _, err := m.FineTune(nil, 5, 0.001); err == nil {
		t.Fatal("accepted empty fine-tuning set")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	samples := gatherSamples(t, db, 20, 4, encoding.CardEstimated)
	m := New(smallConfig())
	if _, err := m.Train(samples[:10]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		a, b := m.Predict(s.Graph), loaded.Predict(s.Graph)
		if a != b {
			t.Fatalf("loaded model predicts %v, original %v", b, a)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model")), DefaultConfig()); err == nil {
		t.Fatal("loaded garbage")
	}
}

func TestFlatSumModelTrains(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	samples := gatherSamples(t, db, 60, 6, encoding.CardExact)
	cfg := smallConfig()
	cfg.FlatSum = true
	cfg.Epochs = 6
	m := New(cfg)
	res, err := m.Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
		t.Fatal("flat-sum model loss did not decrease")
	}
}

func TestTrainingDeterministicForSeed(t *testing.T) {
	db, _ := datagen.IMDBLike(0.02)
	samples := gatherSamples(t, db, 30, 8, encoding.CardExact)
	cfg := smallConfig()
	cfg.Epochs = 3
	m1, m2 := New(cfg), New(cfg)
	if _, err := m1.Train(samples); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Train(samples); err != nil {
		t.Fatal(err)
	}
	if m1.Predict(samples[0].Graph) != m2.Predict(samples[0].Graph) {
		t.Fatal("training not deterministic for equal seeds")
	}
}
