package zeroshot

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/zeroshot-db/zeroshot/internal/datagen"
	"github.com/zeroshot-db/zeroshot/internal/encoding"
	"github.com/zeroshot-db/zeroshot/internal/nn"
)

// trainedWeights trains a fresh model (fixed seed) under the given
// worker cap and returns the flattened weights plus the loss curve.
func trainedWeights(t *testing.T, samples []Sample, workers int, fineTune bool) ([]float64, []float64) {
	t.Helper()
	prev := nn.SetMaxWorkers(workers)
	defer nn.SetMaxWorkers(prev)
	cfg := smallConfig()
	cfg.Epochs = 3
	m := New(cfg)
	res, err := m.Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	losses := append([]float64(nil), res.EpochLoss...)
	if fineTune {
		ft, err := m.FineTune(samples[:len(samples)/2], 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, ft.EpochLoss...)
	}
	var weights []float64
	for _, p := range m.Params() {
		weights = append(weights, p.Val.Data...)
	}
	return weights, losses
}

// TestTrainBitwiseIdenticalAcrossWorkerCounts is the training engine's
// headline contract (the training-side analogue of
// TestFusedBatchBitwiseEqualsSequential): the shard layout and the
// gradient-reduce order depend only on the minibatch, never on the
// worker count, so serial (workers=1) and parallel (2, 4) training
// produce bitwise-identical weights and EpochLoss.
func TestTrainBitwiseIdenticalAcrossWorkerCounts(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	// 52 samples with batch 16: full shards-of-2 minibatches plus a
	// ragged 4-sample tail minibatch, so uneven shard layouts are
	// exercised too.
	samples := gatherSamples(t, db, 52, 17, encoding.CardExact)
	refW, refL := trainedWeights(t, samples, 1, true)
	for _, workers := range []int{2, 4} {
		w, l := trainedWeights(t, samples, workers, true)
		if len(w) != len(refW) {
			t.Fatalf("workers=%d: weight count %d != serial %d", workers, len(w), len(refW))
		}
		for i := range w {
			if w[i] != refW[i] {
				t.Fatalf("workers=%d: weight %d differs from serial: %v != %v (bitwise)",
					workers, i, w[i], refW[i])
			}
		}
		if len(l) != len(refL) {
			t.Fatalf("workers=%d: epoch count %d != serial %d", workers, len(l), len(refL))
		}
		for i := range l {
			if l[i] != refL[i] {
				t.Fatalf("workers=%d: epoch %d loss differs from serial: %v != %v (bitwise)",
					workers, i, l[i], refL[i])
			}
		}
	}
}

// countdownCtx reports Canceled after Err has been consulted n times —
// a deterministic mid-training cancellation point, independent of
// timing.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestTrainCancelsMidEpoch(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	samples := gatherSamples(t, db, 48, 23, encoding.CardExact)
	cfg := smallConfig()
	cfg.Epochs = 50
	m := New(cfg)
	// Budget of 3 Err calls: one epoch check plus two minibatch checks,
	// then the third minibatch boundary of epoch one aborts — well
	// before the 50 epochs finish.
	ctx := &countdownCtx{Context: context.Background()}
	ctx.left.Store(3)
	start := time.Now()
	res, err := m.TrainCtx(ctx, samples)
	if err == nil {
		t.Fatal("mid-epoch cancellation did not abort training")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("training abort error %v does not wrap context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("aborted training returned a result: %+v", res)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("canceled training still took %v", elapsed)
	}

	// A pre-canceled real context aborts before the first epoch.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.TrainCtx(cctx, samples); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: got %v", err)
	}
	// FineTune shares the loop, so it shares the cancellation contract.
	if _, err := m.FineTuneCtx(cctx, samples, 4, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled fine-tune: got %v", err)
	}
}

// TestTrainingAllocsCutByPooling pins the >= 3x per-sample allocation
// cut from tape pooling: the engine's pooled per-sample step (recycled
// tape + reused target) against the pre-engine per-sample cost (fresh
// tape, fresh target tensor) over the same real plan graphs.
func TestTrainingAllocsCutByPooling(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	samples := gatherSamples(t, db, 16, 29, encoding.CardExact)
	m := New(smallConfig())

	unpooled := testing.AllocsPerRun(10, func() {
		for _, s := range samples {
			tp := nn.NewTape()
			out := m.forward(tp, s.Graph)
			target := nn.FromSlice([]float64{math.Log(s.RuntimeSec)})
			loss := tp.HuberLoss(out, target, m.cfg.HuberDelta)
			tp.Backward(loss)
		}
	})

	sc := m.scratch.Get().(*trainScratch)
	defer m.scratch.Put(sc)
	sc.grads.Zero()
	for _, s := range samples {
		m.trainStep(sc, s) // warm the tape slab to its steady state
	}
	pooled := testing.AllocsPerRun(10, func() {
		for _, s := range samples {
			m.trainStep(sc, s)
		}
	})
	t.Logf("per-%d-sample pass: unpooled %.0f allocs, pooled %.0f (%.1fx)",
		len(samples), unpooled, pooled, unpooled/pooled)
	if pooled*3 > unpooled {
		t.Fatalf("tape pooling cut per-sample training allocations only %.1fx (unpooled %.0f, pooled %.0f); want >= 3x",
			unpooled/pooled, unpooled, pooled)
	}
}

// TestTrainReportsThroughput: TrainResult carries wall-time and
// samples/s for the adapt status surface and the train CLI.
func TestTrainReportsThroughput(t *testing.T) {
	db, err := datagen.IMDBLike(0.02)
	if err != nil {
		t.Fatal(err)
	}
	samples := gatherSamples(t, db, 12, 31, encoding.CardExact)
	cfg := smallConfig()
	cfg.Epochs = 2
	m := New(cfg)
	res, err := m.Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime <= 0 {
		t.Fatalf("WallTime not recorded: %v", res.WallTime)
	}
	if res.SamplesPerSec <= 0 {
		t.Fatalf("SamplesPerSec not recorded: %v", res.SamplesPerSec)
	}
}

func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{16, 8}, {15, 8}, {4, 8}, {1, 1}, {17, 8}, {8, 8}, {9, 4},
	} {
		shards := tc.shards
		if shards > tc.n {
			shards = tc.n
		}
		prev := 0
		for s := 0; s < shards; s++ {
			lo, hi := shardBounds(tc.n, shards, s)
			if lo != prev {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", tc.n, tc.shards, s, lo, prev)
			}
			if hi <= lo {
				t.Fatalf("n=%d shards=%d: shard %d empty [%d,%d)", tc.n, tc.shards, s, lo, hi)
			}
			if hi-lo > (tc.n+shards-1)/shards {
				t.Fatalf("n=%d shards=%d: shard %d oversized [%d,%d)", tc.n, tc.shards, s, lo, hi)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d shards=%d: shards cover [0,%d), want [0,%d)", tc.n, tc.shards, prev, tc.n)
		}
	}
}
